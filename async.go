package atmem

// This file is the overlapped background placement pipeline: the
// runtime analogue of the paper's service threads, which profile and
// migrate while the application keeps computing. RunEpochAsync drives a
// one-interval-deep pipeline — the placement computed from epoch N's
// samples executes on a background goroutine while epoch N+1's phases
// run — and reconciles the simulated clock at the join so only the
// non-hidden share of the migration (plus the bandwidth it steals from
// the kernels) is charged. Safety against the concurrently-running
// kernels comes from the memory simulator: per-page seqlock
// generations make translations self-consistent under remap, quiesce
// gates block writers for exactly the remap window, and the shootdown
// log invalidates stale TLB entries lazily at each accessor's next
// access.

import (
	"context"
	"fmt"

	"atmem/internal/telemetry"
)

// asyncOutcome carries a background placement's result across the
// epoch join.
type asyncOutcome struct {
	rep MigrationReport
	err error
}

// RunEpochAsync is RunEpochCtx with overlapped placement: instead of
// stopping the world after the body to analyze and migrate, it launches
// the governed Optimize for the *previous* epoch's samples on a
// background service goroutine, runs the body concurrently, and joins
// before attributing this epoch's samples. The first epoch of a run
// (nothing pending) overlaps nothing and just profiles; call
// DrainAsync after the last epoch to place the final interval's
// samples. Requires Options.Async.Enabled.
//
// Cancelling ctx stops the in-flight background plan at the next
// region or staging-slice boundary (rolled back, reported skipped); the
// epoch itself still completes and attributes its samples.
func (r *Runtime) RunEpochAsync(ctx context.Context, name string, body func()) (EpochReport, error) {
	if r.resid == nil || !r.opts.Async.Enabled {
		return EpochReport{}, fmt.Errorf("atmem: RunEpochAsync requires Options.Async.Enabled")
	}
	r.epoch++
	r.rec.Begin(0, "epoch", name, telemetry.Args{"epoch": r.epoch, "async": true})
	rep := EpochReport{Epoch: r.epoch}
	phaseStart := len(r.phases)
	scrubStart := r.scrubChargedNS

	// Launch the background placement on the pending interval's samples.
	// The heat is still in the registry — the reset is deferred to the
	// join, because the worker's analyzer is reading it — and the period
	// those samples were captured at rides along as a value, because the
	// profiler is about to be reconfigured for the next window.
	var done chan asyncOutcome
	if r.pendingSamples > 0 {
		rep.Overlapped = true
		rep.PlacedFromEpoch = r.epoch - 1
		period := r.pendingPeriod
		done = make(chan asyncOutcome, 1)
		r.asyncActive.Store(true)
		r.rec.Begin(r.placeTID, "placement", "overlap", telemetry.Args{
			"from_epoch": rep.PlacedFromEpoch,
			"samples":    r.pendingSamples,
		})
		go func() {
			mrep, err := r.optimizeGoverned(ctx, period, r.placeTID)
			done <- asyncOutcome{rep: mrep, err: err}
		}()
	}
	r.pendingSamples, r.pendingPeriod = 0, 0

	// Note: no registry reset here, unlike RunEpochCtx. Profiling
	// captures into the profiler's own buffer; attribution onto the
	// (freshly reset) registry happens after the join.
	r.ProfilingStart()
	body()

	var err error
	if done != nil {
		out := <-done
		r.asyncActive.Store(false)
		rep.Optimized = true
		rep.Migration = out.rep
		err = out.err
		r.reconcileOverlap(&rep, phaseStart)
		r.rec.End(r.placeTID, "placement", "overlap", telemetry.Args{
			"migration_s": rep.Migration.Seconds,
			"overlap_s":   rep.OverlapSeconds,
			"stolen_s":    rep.StolenSeconds,
			"bytes_moved": rep.Migration.BytesMoved,
		})
	}

	r.reg.ResetSamples()
	rep.Samples = r.ProfilingStop()
	rep.Phases = append(rep.Phases, r.phases[phaseStart:]...)
	// Stash this interval's heat for the next epoch's background
	// placement. A zero-sample interval carries no signal, so the next
	// epoch overlaps nothing (same idle-interval rule as RunEpoch).
	if rep.Samples > 0 {
		r.pendingSamples = rep.Samples
		r.pendingPeriod = r.prof.Config().Period
	}
	r.finishEpochScorecard(&rep, scrubStart)
	r.rec.End(0, "epoch", name, telemetry.Args{
		"epoch":      r.epoch,
		"samples":    rep.Samples,
		"optimized":  rep.Optimized,
		"overlapped": rep.Overlapped,
	})
	return rep, err
}

// reconcileOverlap settles the simulated clock at the epoch join. The
// body's phases already advanced the clock by their wall time; the
// background migration's modelled seconds were deliberately not added
// by optimizeGoverned (asyncActive was set). Whatever part of the
// migration fits under the phases is hidden — that is the point of
// overlapping — except for the configured StealFraction of it, charged
// back as the copy bandwidth stolen from the kernels; any excess beyond
// the phases' time surfaces in full, as it would on real hardware when
// the service threads outlive the interval.
func (r *Runtime) reconcileOverlap(rep *EpochReport, phaseStart int) {
	var phaseS float64
	for i := phaseStart; i < len(r.phases); i++ {
		phaseS += r.phases[i].Stats.WallSeconds
	}
	migS := rep.Migration.Seconds
	overlap := migS
	if phaseS < overlap {
		overlap = phaseS
	}
	excess := migS - overlap
	stolen := overlap * r.opts.Async.StealFraction
	rep.OverlapSeconds = overlap
	rep.StolenSeconds = stolen
	r.overlapTotalS += overlap
	r.stolenTotalS += stolen
	r.simNS.Add(uint64((excess + stolen) * 1e9))
	if r.rec.Enabled() {
		r.rec.Instant(0, "placement", "overlap-reconcile", telemetry.Args{
			"epoch":       rep.Epoch,
			"migration_s": migS,
			"overlap_s":   overlap,
			"excess_s":    excess,
			"stolen_s":    stolen,
		})
		r.rec.Counter(0, "metric", "stolen-bandwidth", telemetry.Args{
			"overlap_s_total": r.overlapTotalS,
			"stolen_s_total":  r.stolenTotalS,
		})
	}
}

// DrainAsync places the samples still pending from the last
// RunEpochAsync, synchronously (stop-the-world: the full migration time
// is charged, and the end-to-end invariant checker — including object
// checksums — runs). Call it after the epoch loop so the final
// interval's heat is not dropped. It is a no-op returning a zero report
// when nothing is pending.
func (r *Runtime) DrainAsync(ctx context.Context) (MigrationReport, error) {
	if r.resid == nil || !r.opts.Async.Enabled {
		return MigrationReport{}, fmt.Errorf("atmem: DrainAsync requires Options.Async.Enabled")
	}
	if r.pendingSamples == 0 {
		return MigrationReport{}, nil
	}
	period := r.pendingPeriod
	r.pendingSamples, r.pendingPeriod = 0, 0
	return r.optimizeGoverned(ctx, period, 0)
}

// OverlapSeconds returns the cumulative background-migration seconds
// hidden under concurrently-running phases so far.
func (r *Runtime) OverlapSeconds() float64 { return r.overlapTotalS }

// StolenSeconds returns the cumulative seconds charged to the simulated
// clock as bandwidth the background copies stole from running kernels.
func (r *Runtime) StolenSeconds() float64 { return r.stolenTotalS }
