package atmem

// This file is the functional-options construction API. New is the
// preferred constructor; the variadic-struct NewRuntime survives as a
// deprecated shim so existing call sites keep compiling. Each Option
// mutates the same Options struct the shim takes, so the two surfaces
// cannot drift.

import (
	"atmem/internal/core"
	"atmem/internal/faultinject"
	"atmem/internal/health"
	"atmem/internal/metrics"
	"atmem/internal/migrate"
	"atmem/internal/telemetry"
)

// Option configures a Runtime under construction (see New).
type Option func(*Options)

// New builds a runtime on the given testbed:
//
//	rt, err := atmem.New(atmem.NVMDRAM(),
//		atmem.WithThreads(16),
//		atmem.WithTelemetry(rec),
//		atmem.WithAsyncPlacement(atmem.AsyncOptions{Enabled: true}),
//	)
//
// Options apply in order; later options override earlier ones.
func New(tb Testbed, opts ...Option) (*Runtime, error) {
	var o Options
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return newRuntime(tb, o)
}

// WithPolicy sets the placement policy from the legacy enum (default
// PolicyATMem).
//
// Deprecated: use WithPlacementPolicy with a PlacementPolicy value; the
// enum values resolve to the same built-ins via BuiltinPolicy.
func WithPolicy(p Policy) Option {
	return func(o *Options) { o.Policy = p }
}

// WithPlacementPolicy installs the placement policy as a first-class
// object (see PlacementPolicy): one of the built-ins — PaperPolicy,
// OraclePolicy, LearnedPolicy, StaticPolicy — or a caller-defined
// implementation. It overrides any Policy enum setting; the policy is
// validated at construction, and an explicit nil fails New with
// ErrNilPolicy.
func WithPlacementPolicy(p PlacementPolicy) Option {
	return func(o *Options) {
		o.Placement = p
		o.placementNil = p == nil
	}
}

// WithThreads overrides the testbed's simulated thread count.
func WithThreads(n int) Option {
	return func(o *Options) { o.Threads = n }
}

// WithEngine selects the migration mechanism Optimize uses (default
// MigrateATMem).
func WithEngine(m MigrationMechanism) Option {
	return func(o *Options) { o.Mechanism = m }
}

// WithAnalyzer overrides the two-stage analyzer configuration.
func WithAnalyzer(cfg core.Config) Option {
	return func(o *Options) { o.Analyzer = cfg }
}

// WithSamplePeriod fixes the profiler period (0 keeps the automatic
// adjustment of §5.1).
func WithSamplePeriod(period uint64) Option {
	return func(o *Options) { o.SamplePeriod = period }
}

// WithSampleOverheadNS overrides the per-sample capture cost.
func WithSampleOverheadNS(ns float64) Option {
	return func(o *Options) { o.SampleOverheadNS = ns }
}

// WithCapacityReserve holds back bytes of fast memory from the placement
// budget (see Options.CapacityReserve).
func WithCapacityReserve(bytes uint64) Option {
	return func(o *Options) { o.CapacityReserve = bytes }
}

// WithFaultSchedule arms deterministic fault injection at the
// simulator's capacity-mutating operations (see Options.FaultSchedule).
func WithFaultSchedule(s faultinject.Schedule) Option {
	return func(o *Options) { o.FaultSchedule = &s }
}

// WithTelemetry attaches a telemetry recorder (see Options.Recorder).
func WithTelemetry(rec *telemetry.Recorder) Option {
	return func(o *Options) { o.Recorder = rec }
}

// WithGovernor enables and configures the epoch-adaptive placement
// governor (see Options.Governor). The Enabled field is forced on.
func WithGovernor(g GovernorOptions) Option {
	return func(o *Options) {
		g.Enabled = true
		o.Governor = g
	}
}

// WithBandwidthAware toggles the aggregate-bandwidth placement
// enhancement (see Options.BandwidthAware).
func WithBandwidthAware(on bool) Option {
	return func(o *Options) { o.BandwidthAware = on }
}

// WithAsyncPlacement enables overlapped background placement: governed
// epochs driven via RunEpochAsync migrate the previous interval's plan
// concurrently with the next interval's phases. The Enabled field is
// forced on, and the governor is implied (see AsyncOptions).
func WithAsyncPlacement(a AsyncOptions) Option {
	return func(o *Options) {
		a.Enabled = true
		o.Async = a
	}
}

// WithPlanCache attaches a compiled-plan cache, enabling record/replay
// of governed placement schedules (see Options.PlanCache and
// Runtime.ArmPlan). Pass the same cache to every runtime that should
// share recorded plans.
func WithPlanCache(pc *core.PlanCache) Option {
	return func(o *Options) { o.PlanCache = pc }
}

// WithHealthPolicy enables the tier-health scoreboard under the given
// policy (see Options.Health): promotion failures and CRC detections
// feed per-granule error windows, granules in backoff are excluded from
// promotion, and granules crossing the persistence threshold are
// evacuated and retired into the quarantine ledger. Zero policy fields
// take the health package defaults.
func WithHealthPolicy(p health.Policy) Option {
	return func(o *Options) {
		o.Health.Enabled = true
		o.Health.Policy = p
	}
}

// WithScrubber enables the between-epoch CRC-32C scrubber on top of the
// health scoreboard (see Options.Health.Scrub): fast-resident chunks
// are checksummed after each governed epoch's migration and verified
// before the next epoch's kernels run; a mismatch is repaired from the
// scrubber's backup, the chunk emergency-demoted, and its pages
// retired.
func WithScrubber() Option {
	return func(o *Options) {
		o.Health.Enabled = true
		o.Health.Scrub = true
	}
}

// WithRetryPolicy overrides the per-region degradation ladder shared by
// both migration engines and the scrubber's emergency demotion (see
// Options.Retry).
func WithRetryPolicy(rp migrate.RetryPolicy) Option {
	return func(o *Options) { o.Retry = rp }
}

// WithMetrics attaches a live metrics registry (see Options.Metrics).
// Construct one with NewMetricsRegistry, or share a registry across
// runtimes to aggregate their series.
func WithMetrics(m *metrics.Registry) Option {
	return func(o *Options) { o.Metrics = m }
}

// WithDebugAddr starts the debug HTTP listener on addr (see
// Options.DebugAddr): /metrics, /epochz, /healthz, and /debug/pprof/.
// ":0" picks a free port, readable back via Runtime.DebugAddr. Implies
// metrics; stop it with Runtime.Close.
func WithDebugAddr(addr string) Option {
	return func(o *Options) { o.DebugAddr = addr }
}

// WithScorecardSink streams every per-epoch placement-quality Scorecard
// to fn as the epoch boundary computes it (see Options.ScorecardSink).
func WithScorecardSink(fn func(Scorecard)) Option {
	return func(o *Options) { o.ScorecardSink = fn }
}

// WithTenant attaches the runtime to a multi-tenant broker as the
// given admitted tenant (see NewBroker and Options.Tenant): the
// runtime shares the broker's memory system, honors its granted
// fast-tier share as the placement budget, and reports per-epoch
// signals to the broker's arbiter. Implies the governor.
func WithTenant(t *Tenant) Option {
	return func(o *Options) { o.Tenant = t }
}

// WithOptions merges a whole Options struct, for callers migrating from
// the deprecated NewRuntime signature one step at a time.
func WithOptions(full Options) Option {
	return func(o *Options) { *o = full }
}
