package graph

import (
	"testing"
)

func TestRelabelPreservesTopology(t *testing.T) {
	g := smallGraph(t)
	g.AttachWeights(3, 16)
	perm := []int{4, 3, 2, 1, 0} // reverse ids
	r, err := g.Relabel("rev", perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != g.NumEdges() || r.NumVertices() != g.NumVertices() {
		t.Fatal("shape changed")
	}
	// Edge 0->1 becomes 4->3, with its weight intact.
	var w01 float32
	for i := g.Offsets[0]; i < g.Offsets[1]; i++ {
		if g.Edges[i] == 1 {
			w01 = g.Weights[i]
		}
	}
	found := false
	for i := r.Offsets[4]; i < r.Offsets[5]; i++ {
		if r.Edges[i] == 3 && r.Weights[i] == w01 {
			found = true
		}
	}
	if !found {
		t.Error("edge 0->1 not found as 4->3 with its weight")
	}
}

func TestRelabelRejectsNonPermutations(t *testing.T) {
	g := smallGraph(t)
	if _, err := g.Relabel("x", []int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := g.Relabel("x", []int{0, 0, 1, 2, 3}); err == nil {
		t.Error("duplicate mapping accepted")
	}
	if _, err := g.Relabel("x", []int{0, 1, 2, 3, 9}); err == nil {
		t.Error("out-of-range mapping accepted")
	}
}

func TestShuffleLabelsDeterministicAndDegreePreserving(t *testing.T) {
	g, err := GenerateRMAT("r", DefaultRMAT(8, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.ShuffleLabels(11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.ShuffleLabels(11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("shuffle not deterministic")
		}
	}
	// Degree multiset is preserved.
	degCount := map[int]int{}
	for v := 0; v < g.NumVertices(); v++ {
		degCount[g.Degree(v)]++
		degCount[a.Degree(v)]--
	}
	for _, c := range degCount {
		if c != 0 {
			t.Fatal("degree multiset changed")
		}
	}
}

func TestShuffleDestroysHubLocality(t *testing.T) {
	g, err := Load("twitter")
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := g.ShuffleLabels(7)
	if err != nil {
		t.Fatal(err)
	}
	share := func(gr *Graph) float64 {
		var low uint64
		cut := gr.NumVertices() / 10
		for v := 0; v < cut; v++ {
			low += uint64(gr.Degree(v))
		}
		return float64(low) / float64(gr.NumEdges())
	}
	if share(shuffled) > share(g)*0.6 {
		t.Errorf("shuffle kept low-id hub share: %.2f vs %.2f", share(shuffled), share(g))
	}
}

func TestDegreeOrderPacksHubs(t *testing.T) {
	g, err := Load("pokec")
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := g.DegreeOrder()
	if err != nil {
		t.Fatal(err)
	}
	if err := ordered.Validate(); err != nil {
		t.Fatal(err)
	}
	// Total degree must be non-increasing across the first ids.
	deg := func(gr *Graph) []int {
		d := make([]int, gr.NumVertices())
		for v := 0; v < gr.NumVertices(); v++ {
			d[v] += gr.Degree(v)
		}
		for _, dst := range gr.Edges {
			d[dst]++
		}
		return d
	}
	d := deg(ordered)
	for v := 1; v < 100; v++ {
		if d[v] > d[v-1] {
			t.Fatalf("degree order violated at %d: %d > %d", v, d[v], d[v-1])
		}
	}
}
