package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	g, err := GenerateRMAT("roundtrip", DefaultRMAT(8, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	g.AttachWeights(9, 32)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != g.Name || got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %s V=%d E=%d", got.Name, got.NumVertices(), got.NumEdges())
	}
	for i := range g.Offsets {
		if g.Offsets[i] != got.Offsets[i] {
			t.Fatal("offsets differ")
		}
	}
	for i := range g.Edges {
		if g.Edges[i] != got.Edges[i] || g.Weights[i] != got.Weights[i] {
			t.Fatal("edges or weights differ")
		}
	}
}

func TestBinaryRoundTripUnweighted(t *testing.T) {
	g := smallGraph(t)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weights != nil {
		t.Error("unweighted graph gained weights")
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a graph")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("ATMG")); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestReadBinaryRejectsTruncatedBody(t *testing.T) {
	g := smallGraph(t)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestParseEdgeList(t *testing.T) {
	input := `# comment
% another comment
0 1
0 2
1 2 3.5
3 0
`
	g, err := ParseEdgeList("parsed", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Errorf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Weights == nil {
		t.Fatal("weighted line should trigger weights")
	}
	// Find the 1->2 edge and check its weight.
	found := false
	for i := g.Offsets[1]; i < g.Offsets[2]; i++ {
		if g.Edges[i] == 2 && g.Weights[i] == 3.5 {
			found = true
		}
	}
	if !found {
		t.Error("weight 3.5 lost")
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := []string{
		"",            // no edges
		"0\n",         // missing dst
		"a b\n",       // non-numeric
		"0 1 weird\n", // bad weight
	}
	for _, in := range cases {
		if _, err := ParseEdgeList("bad", strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}
