package graph

import (
	"fmt"
	"sync"
)

// Dataset describes one of the paper's five inputs (Table 2) at the
// reproduction's scale (~1000x fewer edges; see DESIGN.md §5). The skew
// regime of each original graph is preserved: pokec is a mid-skew social
// network, twitter has extreme hub concentration, friendster is large but
// flatter, and the rmat graphs follow Graph500 parameters.
type Dataset struct {
	// Name matches the paper's dataset name.
	Name string
	// PaperVertices and PaperEdges record the original sizes from
	// Table 2, for reports.
	PaperVertices, PaperEdges string
	// Build generates the graph (weights attached, deterministic).
	Build func() (*Graph, error)
}

// Datasets returns the five evaluation inputs in the paper's order.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name: "pokec", PaperVertices: "1.6M", PaperEdges: "30.6M",
			Build: func() (*Graph, error) {
				return GenerateSocial("pokec", SocialParams{
					NumVertices:     32768,
					AvgDegree:       20,
					DegreeSkew:      0.55,
					PopularityAlpha: 0.85,
					LocalFraction:   0.4,
					CommunitySize:   64,
					Seed:            0x506f6b65, // "Poke"
				})
			},
		},
		{
			Name: "rmat24", PaperVertices: "16.8M", PaperEdges: "268.4M",
			Build: func() (*Graph, error) {
				return GenerateRMAT("rmat24", DefaultRMAT(16, 16, 24))
			},
		},
		{
			Name: "twitter", PaperVertices: "41.7M", PaperEdges: "1.5B",
			Build: func() (*Graph, error) {
				return GenerateSocial("twitter", SocialParams{
					NumVertices:     81920,
					AvgDegree:       30,
					DegreeSkew:      0.75,
					PopularityAlpha: 1.05, // extreme hub skew
					LocalFraction:   0.15,
					CommunitySize:   32,
					Seed:            0x54776974, // "Twit"
				})
			},
		},
		{
			Name: "rmat27", PaperVertices: "134.2M", PaperEdges: "2.1B",
			Build: func() (*Graph, error) {
				return GenerateRMAT("rmat27", DefaultRMAT(17, 16, 27))
			},
		},
		{
			Name: "friendster", PaperVertices: "68.3M", PaperEdges: "2.1B",
			Build: func() (*Graph, error) {
				return GenerateSocial("friendster", SocialParams{
					NumVertices:     98304,
					AvgDegree:       21,
					DegreeSkew:      0.4,
					PopularityAlpha: 0.6, // flatter than twitter
					LocalFraction:   0.5,
					CommunitySize:   128,
					Seed:            0x46726e64, // "Frnd"
				})
			},
		},
	}
}

// DatasetNames returns the dataset names in the paper's order.
func DatasetNames() []string {
	ds := Datasets()
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name
	}
	return names
}

var (
	cacheMu    sync.Mutex
	graphCache = map[string]*Graph{}
	custom     = map[string]func() (*Graph, error){}
)

// RegisterDataset makes a caller-supplied builder loadable by name —
// used for derived inputs (relabelled variants, external edge lists) so
// the kernels and the harness can treat them like the built-in datasets.
// Registering an existing name replaces the builder and drops any cached
// graph for it.
func RegisterDataset(name string, build func() (*Graph, error)) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	custom[name] = build
	delete(graphCache, name)
	delete(derivedCache, name+"/rev")
	delete(derivedCache, name+"/sym")
}

// Load builds (or returns the cached) named dataset with edge weights
// attached. The returned graph is shared: callers must not mutate it.
// Builders run outside the cache lock, so a derived dataset's builder
// may itself call Load.
func Load(name string) (*Graph, error) {
	cacheMu.Lock()
	if g, ok := graphCache[name]; ok {
		cacheMu.Unlock()
		return g, nil
	}
	build := custom[name]
	cacheMu.Unlock()
	if build == nil {
		for _, d := range Datasets() {
			if d.Name == name {
				build = d.Build
				break
			}
		}
	}
	if build == nil {
		return nil, fmt.Errorf("graph: unknown dataset %q (have %v)", name, DatasetNames())
	}
	g, err := build()
	if err != nil {
		return nil, err
	}
	if g.Weights == nil {
		g.AttachWeights(uint64(len(g.Edges)), 64)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	// A concurrent Load may have finished first; keep the cached one so
	// all callers share a single instance.
	if cached, ok := graphCache[name]; ok {
		return cached, nil
	}
	graphCache[name] = g
	return g, nil
}

// ClearCache empties the dataset cache (tests of memory behaviour).
func ClearCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	graphCache = map[string]*Graph{}
	derivedCache = map[string]*Graph{}
}

var derivedCache = map[string]*Graph{}

// LoadReverse returns the cached transpose of the named dataset.
func LoadReverse(name string) (*Graph, error) {
	g, err := Load(name)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	key := name + "/rev"
	if r, ok := derivedCache[key]; ok {
		return r, nil
	}
	r := g.Reverse()
	derivedCache[key] = r
	return r, nil
}

// LoadSymmetric returns the cached symmetrized form of the named dataset
// (unweighted).
func LoadSymmetric(name string) (*Graph, error) {
	g, err := Load(name)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	key := name + "/sym"
	if s, ok := derivedCache[key]; ok {
		return s, nil
	}
	s, err := g.Symmetrize()
	if err != nil {
		return nil, err
	}
	derivedCache[key] = s
	return s, nil
}
