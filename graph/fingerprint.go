package graph

import (
	"encoding/binary"
	"hash/crc32"
)

// crcTable is Castagnoli, hardware-accelerated where it matters.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CRC fingerprints the graph's content: the CSR arrays (offsets, edges,
// weights), not the name. Two graphs with equal CRCs drive identical
// access patterns through the kernels, which is what compiled-plan
// signatures need — a regenerated, relabelled, or reweighted graph
// changes the CRC even if it is registered under the same dataset name.
//
// Encoding is chunked (not per-element) so fingerprinting a scale-24
// graph with hundreds of millions of edges stays a small fraction of its
// load time.
func (g *Graph) CRC() uint32 {
	const chunk = 8192 // elements per encode batch
	buf := make([]byte, 8*chunk)
	crc := crc32.Checksum(nil, crcTable)

	for lo := 0; lo < len(g.Offsets); lo += chunk {
		hi := min(lo+chunk, len(g.Offsets))
		n := 0
		for _, o := range g.Offsets[lo:hi] {
			binary.LittleEndian.PutUint64(buf[n:], o)
			n += 8
		}
		crc = crc32.Update(crc, crcTable, buf[:n])
	}
	for lo := 0; lo < len(g.Edges); lo += chunk {
		hi := min(lo+chunk, len(g.Edges))
		n := 0
		for _, e := range g.Edges[lo:hi] {
			binary.LittleEndian.PutUint32(buf[n:], e)
			n += 4
		}
		crc = crc32.Update(crc, crcTable, buf[:n])
	}
	for lo := 0; lo < len(g.Weights); lo += chunk {
		hi := min(lo+chunk, len(g.Weights))
		n := 0
		for _, w := range g.Weights[lo:hi] {
			binary.LittleEndian.PutUint32(buf[n:], uint32(w*1024))
			n += 4
		}
		crc = crc32.Update(crc, crcTable, buf[:n])
	}
	return crc
}
