package graph

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"atmem/internal/stats"
)

// RMATParams parameterize the recursive-matrix generator of Chakrabarti
// et al., the generator behind the paper's rmat24/rmat27 inputs.
type RMATParams struct {
	// Scale is log2 of the vertex count.
	Scale int
	// EdgeFactor is edges per vertex.
	EdgeFactor int
	// A, B, C are the recursive quadrant probabilities (D = 1-A-B-C).
	// The Graph500 defaults (0.57, 0.19, 0.19) concentrate hubs at low
	// vertex ids, producing the contiguous dense regions ATMem's
	// chunking exploits.
	A, B, C float64
	// Seed drives the deterministic RNG.
	Seed uint64
}

// DefaultRMAT returns Graph500-style parameters.
func DefaultRMAT(scale, edgeFactor int, seed uint64) RMATParams {
	return RMATParams{Scale: scale, EdgeFactor: edgeFactor, A: 0.57, B: 0.19, C: 0.19, Seed: seed}
}

// GenerateRMAT produces a deterministic RMAT graph.
func GenerateRMAT(name string, p RMATParams) (*Graph, error) {
	if p.Scale <= 0 || p.Scale > 30 {
		return nil, fmt.Errorf("graph: RMAT scale %d out of range", p.Scale)
	}
	if p.EdgeFactor <= 0 {
		return nil, fmt.Errorf("graph: RMAT edge factor must be positive")
	}
	if p.A <= 0 || p.B < 0 || p.C < 0 || p.A+p.B+p.C >= 1 {
		return nil, fmt.Errorf("graph: RMAT quadrant probabilities invalid")
	}
	n := 1 << p.Scale
	m := n * p.EdgeFactor
	rng := stats.NewRNG(p.Seed)
	edges := make([]Edge, m)
	if p.Scale >= parallelRMATScale {
		// Paper-scale graphs shard the edge stream across a FIXED number
		// of Fork()ed deterministic streams, so the graph depends only on
		// the parameters — never on host core count or scheduling — while
		// the sampling runs on every core. The scale gate keeps every
		// pre-existing (sequentially generated) dataset bit-identical.
		const shards = 64
		per := (m + shards - 1) / shards
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for sh := 0; sh < shards; sh++ {
			lo := sh * per
			hi := lo + per
			if hi > m {
				hi = m
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(sh, lo, hi int) {
				defer wg.Done()
				defer func() { <-sem }()
				r := rng.Fork(uint64(sh) + 1)
				for i := lo; i < hi; i++ {
					edges[i] = sampleRMATEdge(r, p)
				}
			}(sh, lo, hi)
		}
		wg.Wait()
	} else {
		for i := 0; i < m; i++ {
			edges[i] = sampleRMATEdge(rng, p)
		}
	}
	return FromEdges(name, n, edges, true)
}

// parallelRMATScale is the scale at or above which GenerateRMAT samples
// its edge stream in parallel shards. Scales below it (every built-in
// scaled dataset) keep the original sequential RNG stream.
const parallelRMATScale = 22

// sampleRMATEdge draws one edge by the recursive quadrant descent.
func sampleRMATEdge(rng *stats.RNG, p RMATParams) Edge {
	ab := p.A + p.B
	abc := ab + p.C
	var src, dst uint32
	for bit := p.Scale - 1; bit >= 0; bit-- {
		r := rng.Float64()
		switch {
		case r < p.A:
			// top-left: no bits set
		case r < ab:
			dst |= 1 << bit
		case r < abc:
			src |= 1 << bit
		default:
			src |= 1 << bit
			dst |= 1 << bit
		}
	}
	return Edge{src, dst}
}

// SocialParams parameterize the social-network generator used for the
// pokec / twitter / friendster analogues. Out-degrees follow a Zipf-like
// rank law with hubs at LOW vertex ids — real crawled datasets (and the
// paper's inputs) have exactly this property because crawls discover
// popular vertices first — and destinations are drawn from a Zipf-like
// popularity distribution, also hub-first. The resulting dense low-id
// regions of the per-vertex property arrays are the contiguous hot
// regions ATMem's chunking and tree promotion exploit.
type SocialParams struct {
	// NumVertices is the vertex count.
	NumVertices int
	// AvgDegree is the mean out-degree.
	AvgDegree int
	// DegreeSkew in [0,1) shapes the out-degree rank law
	// (degree ∝ (v+1)^-DegreeSkew): larger = heavier hubs.
	DegreeSkew float64
	// PopularityAlpha shapes destination popularity (larger = more
	// skewed toward hub vertices; 0 = uniform).
	PopularityAlpha float64
	// LocalFraction of edges connect within a community neighbourhood
	// of the source instead of by popularity, giving social graphs
	// their clustered structure.
	LocalFraction float64
	// CommunitySize is the neighbourhood width for local edges.
	CommunitySize int
	// Seed drives the deterministic RNG.
	Seed uint64
}

// GenerateSocial produces a deterministic social-network-like graph.
func GenerateSocial(name string, p SocialParams) (*Graph, error) {
	if p.NumVertices <= 1 {
		return nil, fmt.Errorf("graph: social generator needs at least 2 vertices")
	}
	if p.AvgDegree <= 0 {
		return nil, fmt.Errorf("graph: social generator needs positive degree")
	}
	if p.DegreeSkew < 0 || p.DegreeSkew >= 1 {
		return nil, fmt.Errorf("graph: DegreeSkew out of [0,1)")
	}
	if p.LocalFraction < 0 || p.LocalFraction > 1 {
		return nil, fmt.Errorf("graph: LocalFraction out of [0,1]")
	}
	if p.CommunitySize <= 0 {
		p.CommunitySize = 64
	}
	n := p.NumVertices
	rng := stats.NewRNG(p.Seed)

	// Popularity CDF: weight(v) = (v+1)^-PopularityAlpha, hubs at low ids.
	cdf := make([]float64, n)
	var total float64
	for v := 0; v < n; v++ {
		w := 1.0
		if p.PopularityAlpha > 0 {
			w = math.Pow(float64(v+1), -p.PopularityAlpha)
		}
		total += w
		cdf[v] = total
	}
	pick := func(r float64) uint32 {
		target := r * total
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return uint32(lo)
	}

	// Out-degree rank law: deg(v) ∝ (v+1)^-DegreeSkew with mean
	// AvgDegree, plus multiplicative jitter so the curve is not
	// perfectly smooth.
	degRNG := rng.Fork(1)
	dstRNG := rng.Fork(2)
	var degNorm float64
	for v := 0; v < n; v++ {
		degNorm += rankWeight(v, p.DegreeSkew)
	}
	degScale := float64(p.AvgDegree) * float64(n) / degNorm
	edges := make([]Edge, 0, n*p.AvgDegree)
	for v := 0; v < n; v++ {
		jitter := 0.5 + degRNG.Float64()
		deg := int(rankWeight(v, p.DegreeSkew)*degScale*jitter + 0.5)
		if deg < 1 {
			deg = 1
		}
		for k := 0; k < deg; k++ {
			var dst uint32
			if dstRNG.Float64() < p.LocalFraction {
				// Community edge: near the source.
				off := dstRNG.Intn(2*p.CommunitySize+1) - p.CommunitySize
				d := v + off
				if d < 0 {
					d += n
				}
				if d >= n {
					d -= n
				}
				dst = uint32(d)
			} else {
				dst = pick(dstRNG.Float64())
			}
			if int(dst) == v {
				dst = uint32((v + 1) % n)
			}
			edges = append(edges, Edge{uint32(v), dst})
		}
	}
	return FromEdges(name, n, edges, true)
}

// rankWeight is the Zipf-like rank weight (v+1)^-skew.
func rankWeight(v int, skew float64) float64 {
	if skew <= 0 {
		return 1
	}
	return math.Pow(float64(v+1), -skew)
}

// AttachWeights gives g deterministic per-edge weights in [1, maxWeight],
// as the SSSP evaluation requires.
func (g *Graph) AttachWeights(seed uint64, maxWeight int) {
	if maxWeight < 1 {
		maxWeight = 1
	}
	rng := stats.NewRNG(seed)
	g.Weights = make([]float32, len(g.Edges))
	for i := range g.Weights {
		g.Weights[i] = float32(rng.Intn(maxWeight) + 1)
	}
}
