package graph

import (
	"slices"
	"sort"
	"testing"
	"testing/quick"

	"atmem/internal/stats"
)

func smallGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges("tiny", 5, []Edge{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}, {3, 4},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBuildsValidCSR(t *testing.T) {
	g := smallGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || g.NumEdges() != 6 {
		t.Errorf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if got := g.Neighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("N(0) = %v", got)
	}
	if g.Degree(4) != 0 {
		t.Errorf("deg(4) = %d", g.Degree(4))
	}
}

func TestFromEdgesDedup(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 1}, {0, 1}, {1, 0}}
	g, err := FromEdges("dup", 2, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("dedup kept %d edges", g.NumEdges())
	}
	g2, err := FromEdges("dup", 2, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 4 {
		t.Errorf("no-dedup kept %d edges", g2.NumEdges())
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges("bad", 2, []Edge{{0, 5}}, false); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromEdges("bad", 0, nil, false); err == nil {
		t.Error("zero vertices accepted")
	}
}

func TestReverse(t *testing.T) {
	g := smallGraph(t)
	r := g.Reverse()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != g.NumEdges() {
		t.Errorf("reverse has %d edges", r.NumEdges())
	}
	// In-neighbours of 2 are {0, 1}.
	got := r.Neighbors(2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("in-N(2) = %v", got)
	}
}

func TestReverseRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		g, err := GenerateRMAT("r", DefaultRMAT(6, 4, seed))
		if err != nil {
			return false
		}
		rr := g.Reverse().Reverse()
		if rr.NumVertices() != g.NumVertices() || rr.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.Neighbors(v), rr.Neighbors(v)
			if len(a) != len(b) {
				return false
			}
			// Both are produced grouped by source; orders may differ,
			// so compare as multisets via sorting-free count match.
			count := map[uint32]int{}
			for _, x := range a {
				count[x]++
			}
			for _, x := range b {
				count[x]--
			}
			for _, c := range count {
				if c != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestReverseCarriesWeights(t *testing.T) {
	g := smallGraph(t)
	g.AttachWeights(1, 10)
	r := g.Reverse()
	if r.Weights == nil || len(r.Weights) != len(r.Edges) {
		t.Fatal("reverse lost weights")
	}
	// The weight of edge 0->1 must follow it into r's in-list of 1.
	w01 := g.Weights[0] // edges sorted: first edge is 0->1
	found := false
	for i := r.Offsets[1]; i < r.Offsets[2]; i++ {
		if r.Edges[i] == 0 && r.Weights[i] == w01 {
			found = true
		}
	}
	if !found {
		t.Error("weight did not follow its edge through Reverse")
	}
}

func TestSymmetrize(t *testing.T) {
	g := smallGraph(t)
	s, err := g.Symmetrize()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < s.NumVertices(); v++ {
		for _, d := range s.Neighbors(v) {
			back := false
			for _, b := range s.Neighbors(int(d)) {
				if int(b) == v {
					back = true
				}
			}
			if !back {
				t.Fatalf("edge %d->%d has no reverse", v, d)
			}
		}
	}
}

func TestMaxDegreeVertex(t *testing.T) {
	g := smallGraph(t)
	// Vertices 0 and 3 both have degree 2; ties break to the lower id.
	if got := g.MaxDegreeVertex(); got != 0 {
		t.Errorf("hub = %d", got)
	}
}

func TestAttachWeightsDeterministic(t *testing.T) {
	a := smallGraph(t)
	b := smallGraph(t)
	a.AttachWeights(42, 64)
	b.AttachWeights(42, 64)
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatal("weights differ across same-seed builds")
		}
		if a.Weights[i] < 1 || a.Weights[i] > 64 {
			t.Fatalf("weight %v out of range", a.Weights[i])
		}
	}
}

func TestRMATDeterministicAndSkewed(t *testing.T) {
	g1, err := GenerateRMAT("a", DefaultRMAT(10, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GenerateRMAT("b", DefaultRMAT(10, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatal("edge arrays differ")
		}
	}
	st := ComputeDegreeStats(g1)
	if st.TopShare[0.10] < 0.2 {
		t.Errorf("RMAT top-10%% in-degree share %.2f too flat", st.TopShare[0.10])
	}
}

func TestRMATValidation(t *testing.T) {
	if _, err := GenerateRMAT("x", RMATParams{Scale: 0, EdgeFactor: 4, A: 0.5, B: 0.2, C: 0.2}); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := GenerateRMAT("x", RMATParams{Scale: 4, EdgeFactor: 0, A: 0.5, B: 0.2, C: 0.2}); err == nil {
		t.Error("edge factor 0 accepted")
	}
	if _, err := GenerateRMAT("x", RMATParams{Scale: 4, EdgeFactor: 4, A: 0.6, B: 0.3, C: 0.2}); err == nil {
		t.Error("probabilities summing past 1 accepted")
	}
}

func TestSocialGeneratorHubsAtLowIDs(t *testing.T) {
	g, err := GenerateSocial("s", SocialParams{
		NumVertices:     4096,
		AvgDegree:       16,
		DegreeSkew:      0.6,
		PopularityAlpha: 0.9,
		LocalFraction:   0.3,
		CommunitySize:   32,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Hubs concentrate at low ids: the first 10% of vertices must own
	// a disproportionate share of out-edges.
	var lowOut uint64
	cut := g.NumVertices() / 10
	for v := 0; v < cut; v++ {
		lowOut += uint64(g.Degree(v))
	}
	share := float64(lowOut) / float64(g.NumEdges())
	if share < 0.25 {
		t.Errorf("low-id out-degree share %.2f, want >= 0.25", share)
	}
	// In-degree (popularity) skew must also favour low ids.
	st := ComputeDegreeStats(g)
	if st.TopShare[0.10] < 0.25 {
		t.Errorf("top-10%% in-share %.2f too flat", st.TopShare[0.10])
	}
}

func TestSocialGeneratorValidation(t *testing.T) {
	base := SocialParams{NumVertices: 100, AvgDegree: 4}
	bad := []func(*SocialParams){
		func(p *SocialParams) { p.NumVertices = 1 },
		func(p *SocialParams) { p.AvgDegree = 0 },
		func(p *SocialParams) { p.DegreeSkew = 1.5 },
		func(p *SocialParams) { p.LocalFraction = 2 },
	}
	for i, mut := range bad {
		p := base
		mut(&p)
		if _, err := GenerateSocial("x", p); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDegreeStatsBasics(t *testing.T) {
	g := smallGraph(t)
	st := ComputeDegreeStats(g)
	if st.Vertices != 5 || st.Edges != 6 {
		t.Errorf("V=%d E=%d", st.Vertices, st.Edges)
	}
	if st.MinDegree != 0 || st.MaxDegree != 2 {
		t.Errorf("deg range %d..%d", st.MinDegree, st.MaxDegree)
	}
	if st.String() == "" {
		t.Error("empty String()")
	}
}

func TestFootprintBytes(t *testing.T) {
	g := smallGraph(t)
	want := uint64(6*8 + 6*4 + 5*8*2) // offsets + edges + 2 prop arrays
	if got := g.FootprintBytes(2); got != want {
		t.Errorf("footprint %d, want %d", got, want)
	}
	g.AttachWeights(1, 4)
	if got := g.FootprintBytes(0); got != uint64(6*8+6*4+6*4) {
		t.Errorf("weighted footprint %d", got)
	}
}

// Property: out-degree sum equals edge count for generated graphs.
func TestDegreeSumProperty(t *testing.T) {
	rng := stats.NewRNG(1)
	for i := 0; i < 10; i++ {
		g, err := GenerateRMAT("r", DefaultRMAT(8, 4, rng.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for v := 0; v < g.NumVertices(); v++ {
			sum += g.Degree(v)
		}
		if sum != g.NumEdges() {
			t.Fatalf("degree sum %d != %d edges", sum, g.NumEdges())
		}
	}
}

// TestFromEdgesMatchesReferenceSort pins the parallel counting-sort CSR
// build to the canonical order a global (src, dst) comparison sort
// produces: the two must be bit-identical on seeded random edge lists
// (duplicates included), with and without dedup. Every pre-existing
// dataset's bytes depend on this equivalence.
func TestFromEdgesMatchesReferenceSort(t *testing.T) {
	rng := stats.NewRNG(99)
	for _, tc := range []struct {
		n, m  int
		dedup bool
	}{
		{1, 50, true}, {7, 0, true}, {64, 4096, true}, {64, 4096, false},
		{1000, 20000, true}, {1000, 20000, false},
	} {
		edges := make([]Edge, tc.m)
		for i := range edges {
			// Small vertex space forces duplicate (src, dst) pairs.
			edges[i] = Edge{uint32(rng.Intn(tc.n)), uint32(rng.Intn(tc.n))}
		}
		got, err := FromEdges("par", tc.n, edges, tc.dedup)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: global comparison sort + linear dedup.
		ref := make([]Edge, len(edges))
		copy(ref, edges)
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].Src != ref[j].Src {
				return ref[i].Src < ref[j].Src
			}
			return ref[i].Dst < ref[j].Dst
		})
		if tc.dedup {
			out := ref[:0]
			for i, e := range ref {
				if i > 0 && e == ref[i-1] {
					continue
				}
				out = append(out, e)
			}
			ref = out
		}
		wantOffsets := make([]uint64, tc.n+1)
		wantEdges := make([]uint32, len(ref))
		for i, e := range ref {
			wantOffsets[e.Src+1]++
			wantEdges[i] = e.Dst
		}
		for v := 0; v < tc.n; v++ {
			wantOffsets[v+1] += wantOffsets[v]
		}
		if !slices.Equal(got.Offsets, wantOffsets) {
			t.Errorf("n=%d m=%d dedup=%t: offsets diverge from reference sort", tc.n, tc.m, tc.dedup)
		}
		if !slices.Equal(got.Edges, wantEdges) {
			t.Errorf("n=%d m=%d dedup=%t: edges diverge from reference sort", tc.n, tc.m, tc.dedup)
		}
	}
}
