package graph

import (
	"fmt"
	"sort"

	"atmem/internal/stats"
)

// Relabel returns a copy of g with vertex ids renamed by perm
// (perm[old] = new). Weights follow their edges. The permutation must be
// a bijection over the vertex ids.
func (g *Graph) Relabel(name string, perm []int) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d for %d vertices", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("graph: not a permutation")
		}
		seen[p] = true
	}
	type we struct {
		e Edge
		w float32
	}
	edges := make([]we, 0, g.NumEdges())
	for v := 0; v < n; v++ {
		for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
			var w float32
			if g.Weights != nil {
				w = g.Weights[i]
			}
			edges = append(edges, we{Edge{uint32(perm[v]), uint32(perm[g.Edges[i]])}, w})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].e.Src != edges[j].e.Src {
			return edges[i].e.Src < edges[j].e.Src
		}
		return edges[i].e.Dst < edges[j].e.Dst
	})
	out := &Graph{
		Name:    name,
		Offsets: make([]uint64, n+1),
		Edges:   make([]uint32, len(edges)),
	}
	if g.Weights != nil {
		out.Weights = make([]float32, len(edges))
	}
	for i, e := range edges {
		out.Offsets[e.e.Src+1]++
		out.Edges[i] = e.e.Dst
		if out.Weights != nil {
			out.Weights[i] = e.w
		}
	}
	for v := 0; v < n; v++ {
		out.Offsets[v+1] += out.Offsets[v]
	}
	return out, nil
}

// ShuffleLabels returns a copy of g with vertex ids permuted uniformly at
// random (deterministic under seed). It destroys the hub-at-low-ids
// locality of crawled and RMAT graphs while preserving the topology —
// the ablation input for probing how much ATMem's chunk-granularity
// selection depends on spatially contiguous hot regions.
func (g *Graph) ShuffleLabels(seed uint64) (*Graph, error) {
	rng := stats.NewRNG(seed)
	return g.Relabel(g.Name+"-shuffled", rng.Perm(g.NumVertices()))
}

// DegreeOrder returns a copy of g relabelled so vertices are ordered by
// decreasing total degree (in+out): the "hub packing" preprocessing many
// graph frameworks apply, which maximizes the contiguity of hot regions.
func (g *Graph) DegreeOrder() (*Graph, error) {
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] += g.Degree(v)
	}
	for _, d := range g.Edges {
		deg[d]++
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return deg[order[a]] > deg[order[b]] })
	perm := make([]int, n)
	for rank, old := range order {
		perm[old] = rank
	}
	return g.Relabel(g.Name+"-degordered", perm)
}
