package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Binary CSR format:
//
//	magic "ATMG", version uint32, nameLen uint32, name bytes,
//	numVertices uint64, numEdges uint64, hasWeights uint8,
//	offsets []uint64, edges []uint32, [weights []float32]
//
// all little-endian.

const (
	binMagic   = "ATMG"
	binVersion = 1
)

// WriteBinary serializes g.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	var scratch [8]byte
	put32 := func(v uint32) error {
		le.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	put64 := func(v uint64) error {
		le.PutUint64(scratch[:8], v)
		_, err := bw.Write(scratch[:8])
		return err
	}
	if err := put32(binVersion); err != nil {
		return err
	}
	if err := put32(uint32(len(g.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(g.Name); err != nil {
		return err
	}
	if err := put64(uint64(g.NumVertices())); err != nil {
		return err
	}
	if err := put64(uint64(len(g.Edges))); err != nil {
		return err
	}
	hasW := byte(0)
	if g.Weights != nil {
		hasW = 1
	}
	if err := bw.WriteByte(hasW); err != nil {
		return err
	}
	for _, o := range g.Offsets {
		if err := put64(o); err != nil {
			return err
		}
	}
	for _, e := range g.Edges {
		if err := put32(e); err != nil {
			return err
		}
	}
	if g.Weights != nil {
		for _, w := range g.Weights {
			if err := put32(floatBits(w)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	le := binary.LittleEndian
	var scratch [8]byte
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return le.Uint32(scratch[:4]), nil
	}
	get64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return le.Uint64(scratch[:8]), nil
	}
	ver, err := get32()
	if err != nil {
		return nil, err
	}
	if ver != binVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", ver)
	}
	nameLen, err := get32()
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("graph: absurd name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	nv, err := get64()
	if err != nil {
		return nil, err
	}
	ne, err := get64()
	if err != nil {
		return nil, err
	}
	const maxSane = 1 << 33
	if nv > maxSane || ne > maxSane {
		return nil, fmt.Errorf("graph: absurd sizes V=%d E=%d", nv, ne)
	}
	hasW, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	g := &Graph{
		Name:    string(name),
		Offsets: make([]uint64, nv+1),
		Edges:   make([]uint32, ne),
	}
	for i := range g.Offsets {
		if g.Offsets[i], err = get64(); err != nil {
			return nil, err
		}
	}
	for i := range g.Edges {
		if g.Edges[i], err = get32(); err != nil {
			return nil, err
		}
	}
	if hasW == 1 {
		g.Weights = make([]float32, ne)
		for i := range g.Weights {
			bits, err := get32()
			if err != nil {
				return nil, err
			}
			g.Weights[i] = bitsFloat(bits)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseEdgeList reads a whitespace-separated "src dst [weight]" edge list
// (SNAP-style; '#' and '%' lines are comments) and builds a CSR graph over
// vertices 0..maxId.
func ParseEdgeList(name string, r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	var weights []float32
	sawWeight := false
	maxID := uint32(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: %s:%d: want 'src dst [w]'", name, lineNo)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: %s:%d: %w", name, lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: %s:%d: %w", name, lineNo, err)
		}
		edges = append(edges, Edge{uint32(src), uint32(dst)})
		if len(fields) >= 3 {
			w, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: %s:%d: %w", name, lineNo, err)
			}
			weights = append(weights, float32(w))
			sawWeight = true
		} else {
			weights = append(weights, 1)
		}
		if uint32(src) > maxID {
			maxID = uint32(src)
		}
		if uint32(dst) > maxID {
			maxID = uint32(dst)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("graph: %s: no edges", name)
	}
	g, err := FromEdges(name, int(maxID)+1, edges, false)
	if err != nil {
		return nil, err
	}
	if sawWeight {
		// FromEdges reordered the edges; rebuild weights by re-sorting
		// pairs alongside. For simplicity re-attach deterministic
		// weights only when the input had none; otherwise map by pair.
		type keyed struct {
			e Edge
			w float32
		}
		kw := make([]keyed, len(edges))
		for i := range edges {
			kw[i] = keyed{edges[i], weights[i]}
		}
		// Build a lookup of first weight per pair.
		seen := make(map[Edge]float32, len(kw))
		for _, k := range kw {
			if _, ok := seen[k.e]; !ok {
				seen[k.e] = k.w
			}
		}
		g.Weights = make([]float32, len(g.Edges))
		for v := 0; v < g.NumVertices(); v++ {
			for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
				g.Weights[i] = seen[Edge{uint32(v), g.Edges[i]}]
			}
		}
	}
	return g, nil
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func bitsFloat(b uint32) float32 { return math.Float32frombits(b) }
