package graph

import (
	"fmt"
	"sort"
)

// DegreeStats summarizes the out-degree distribution of a graph.
type DegreeStats struct {
	Vertices  int
	Edges     int
	MinDegree int
	MaxDegree int
	AvgDegree float64
	// TopShare[k] is the fraction of all edge endpoints (in-degree
	// mass) owned by the top k-fraction of vertices by in-degree, for
	// k in {0.01, 0.05, 0.10, 0.20}. This is the skew metric that
	// predicts how much data ATMem can leave on slow memory.
	TopShare map[float64]float64
}

// ComputeDegreeStats measures g.
func ComputeDegreeStats(g *Graph) DegreeStats {
	n := g.NumVertices()
	st := DegreeStats{
		Vertices:  n,
		Edges:     g.NumEdges(),
		MinDegree: 1 << 30,
		TopShare:  map[float64]float64{},
	}
	if n == 0 {
		st.MinDegree = 0
		return st
	}
	inDeg := make([]int, n)
	for _, d := range g.Edges {
		inDeg[d]++
	}
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		if d < st.MinDegree {
			st.MinDegree = d
		}
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
	}
	st.AvgDegree = float64(st.Edges) / float64(n)

	sorted := make([]int, n)
	copy(sorted, inDeg)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	prefix := make([]int, n+1)
	for i, d := range sorted {
		prefix[i+1] = prefix[i] + d
	}
	for _, k := range []float64{0.01, 0.05, 0.10, 0.20} {
		top := int(float64(n) * k)
		if top < 1 {
			top = 1
		}
		if st.Edges > 0 {
			st.TopShare[k] = float64(prefix[top]) / float64(st.Edges)
		}
	}
	return st
}

func (s DegreeStats) String() string {
	return fmt.Sprintf("V=%d E=%d deg[min=%d avg=%.1f max=%d] top10%%share=%.2f",
		s.Vertices, s.Edges, s.MinDegree, s.AvgDegree, s.MaxDegree, s.TopShare[0.10])
}

// FootprintBytes estimates the memory footprint of the graph's CSR arrays
// plus nPropArrays per-vertex 8-byte property arrays — what an application
// registers with ATMem.
func (g *Graph) FootprintBytes(nPropArrays int) uint64 {
	n := uint64(g.NumVertices())
	e := uint64(g.NumEdges())
	total := (n + 1) * 8 // offsets
	total += e * 4       // edges
	if g.Weights != nil {
		total += e * 4
	}
	total += n * 8 * uint64(nPropArrays)
	return total
}
