// Package graph provides the graph substrate of the ATMem reproduction:
// compressed-sparse-row (CSR) graphs, deterministic generators that
// produce scaled-down analogues of the paper's five datasets (Table 2),
// binary serialization, and skew statistics.
//
// All generators are seeded and deterministic so every experiment is
// reproducible bit-for-bit.
package graph

import (
	"fmt"
	"sort"
)

// Edge is one directed edge of an edge list.
type Edge struct {
	Src, Dst uint32
}

// Graph is a directed graph in CSR form. The out-neighbours of vertex v
// are Edges[Offsets[v]:Offsets[v+1]]; Weights, when non-nil, is parallel
// to Edges.
type Graph struct {
	// Name labels the graph in reports.
	Name string
	// Offsets has NumVertices+1 entries.
	Offsets []uint64
	// Edges holds destination vertex ids.
	Edges []uint32
	// Weights holds per-edge weights (nil for unweighted graphs).
	Weights []float32
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the out-neighbour slice of v (not a copy).
func (g *Graph) Neighbors(v int) []uint32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// Validate checks CSR structural invariants.
func (g *Graph) Validate() error {
	if len(g.Offsets) == 0 {
		return fmt.Errorf("graph %q: empty offsets", g.Name)
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph %q: offsets[0] = %d, want 0", g.Name, g.Offsets[0])
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph %q: offsets not monotone at %d", g.Name, v)
		}
	}
	if g.Offsets[n] != uint64(len(g.Edges)) {
		return fmt.Errorf("graph %q: offsets[n]=%d, want %d edges", g.Name, g.Offsets[n], len(g.Edges))
	}
	for i, d := range g.Edges {
		if int(d) >= n {
			return fmt.Errorf("graph %q: edge %d targets out-of-range vertex %d", g.Name, i, d)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Edges) {
		return fmt.Errorf("graph %q: %d weights for %d edges", g.Name, len(g.Weights), len(g.Edges))
	}
	return nil
}

// FromEdges builds a CSR graph from an edge list over numVertices
// vertices. Edges are sorted by (src, dst); when dedup is true, duplicate
// (src, dst) pairs are collapsed. Self-loops are kept (graph kernels
// tolerate them).
func FromEdges(name string, numVertices int, edges []Edge, dedup bool) (*Graph, error) {
	if numVertices <= 0 {
		return nil, fmt.Errorf("graph %q: non-positive vertex count", name)
	}
	for _, e := range edges {
		if int(e.Src) >= numVertices || int(e.Dst) >= numVertices {
			return nil, fmt.Errorf("graph %q: edge (%d,%d) out of range", name, e.Src, e.Dst)
		}
	}
	sorted := make([]Edge, len(edges))
	copy(sorted, edges)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Src != sorted[j].Src {
			return sorted[i].Src < sorted[j].Src
		}
		return sorted[i].Dst < sorted[j].Dst
	})
	if dedup {
		out := sorted[:0]
		for i, e := range sorted {
			if i > 0 && e == sorted[i-1] {
				continue
			}
			out = append(out, e)
		}
		sorted = out
	}
	g := &Graph{
		Name:    name,
		Offsets: make([]uint64, numVertices+1),
		Edges:   make([]uint32, len(sorted)),
	}
	for i, e := range sorted {
		g.Offsets[e.Src+1]++
		g.Edges[i] = e.Dst
	}
	for v := 0; v < numVertices; v++ {
		g.Offsets[v+1] += g.Offsets[v]
	}
	return g, nil
}

// Reverse returns the transpose of g (weights, if any, follow their
// edges).
func (g *Graph) Reverse() *Graph {
	n := g.NumVertices()
	r := &Graph{
		Name:    g.Name + "-rev",
		Offsets: make([]uint64, n+1),
		Edges:   make([]uint32, len(g.Edges)),
	}
	if g.Weights != nil {
		r.Weights = make([]float32, len(g.Edges))
	}
	for _, d := range g.Edges {
		r.Offsets[d+1]++
	}
	for v := 0; v < n; v++ {
		r.Offsets[v+1] += r.Offsets[v]
	}
	cursor := make([]uint64, n)
	copy(cursor, r.Offsets[:n])
	for src := 0; src < n; src++ {
		for i := g.Offsets[src]; i < g.Offsets[src+1]; i++ {
			d := g.Edges[i]
			pos := cursor[d]
			cursor[d]++
			r.Edges[pos] = uint32(src)
			if g.Weights != nil {
				r.Weights[pos] = g.Weights[i]
			}
		}
	}
	return r
}

// Symmetrize returns a graph with every edge present in both directions
// (deduplicated). Weights are dropped; call AttachWeights afterwards if
// needed.
func (g *Graph) Symmetrize() (*Graph, error) {
	edges := make([]Edge, 0, 2*len(g.Edges))
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		for _, d := range g.Neighbors(v) {
			edges = append(edges, Edge{uint32(v), d})
			edges = append(edges, Edge{d, uint32(v)})
		}
	}
	return FromEdges(g.Name+"-sym", n, edges, true)
}

// MaxDegreeVertex returns the vertex with the highest out-degree (ties
// broken toward the lowest id) — a deterministic, well-connected source
// for traversal kernels.
func (g *Graph) MaxDegreeVertex() int {
	best, bestDeg := 0, -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}
