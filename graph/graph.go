// Package graph provides the graph substrate of the ATMem reproduction:
// compressed-sparse-row (CSR) graphs, deterministic generators that
// produce scaled-down analogues of the paper's five datasets (Table 2),
// binary serialization, and skew statistics.
//
// All generators are seeded and deterministic so every experiment is
// reproducible bit-for-bit.
package graph

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
)

// Edge is one directed edge of an edge list.
type Edge struct {
	Src, Dst uint32
}

// Graph is a directed graph in CSR form. The out-neighbours of vertex v
// are Edges[Offsets[v]:Offsets[v+1]]; Weights, when non-nil, is parallel
// to Edges.
type Graph struct {
	// Name labels the graph in reports.
	Name string
	// Offsets has NumVertices+1 entries.
	Offsets []uint64
	// Edges holds destination vertex ids.
	Edges []uint32
	// Weights holds per-edge weights (nil for unweighted graphs).
	Weights []float32
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the out-neighbour slice of v (not a copy).
func (g *Graph) Neighbors(v int) []uint32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// Validate checks CSR structural invariants.
func (g *Graph) Validate() error {
	if len(g.Offsets) == 0 {
		return fmt.Errorf("graph %q: empty offsets", g.Name)
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph %q: offsets[0] = %d, want 0", g.Name, g.Offsets[0])
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph %q: offsets not monotone at %d", g.Name, v)
		}
	}
	if g.Offsets[n] != uint64(len(g.Edges)) {
		return fmt.Errorf("graph %q: offsets[n]=%d, want %d edges", g.Name, g.Offsets[n], len(g.Edges))
	}
	for i, d := range g.Edges {
		if int(d) >= n {
			return fmt.Errorf("graph %q: edge %d targets out-of-range vertex %d", g.Name, i, d)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Edges) {
		return fmt.Errorf("graph %q: %d weights for %d edges", g.Name, len(g.Weights), len(g.Edges))
	}
	return nil
}

// FromEdges builds a CSR graph from an edge list over numVertices
// vertices. Edges are sorted by (src, dst); when dedup is true, duplicate
// (src, dst) pairs are collapsed. Self-loops are kept (graph kernels
// tolerate them).
func FromEdges(name string, numVertices int, edges []Edge, dedup bool) (*Graph, error) {
	if numVertices <= 0 {
		return nil, fmt.Errorf("graph %q: non-positive vertex count", name)
	}
	for _, e := range edges {
		if int(e.Src) >= numVertices || int(e.Dst) >= numVertices {
			return nil, fmt.Errorf("graph %q: edge (%d,%d) out of range", name, e.Src, e.Dst)
		}
	}
	// Counting sort by source, then an independent destination sort per
	// adjacency segment, parallel across vertex ranges. The result is the
	// edges in (src, dst) order — the same canonical order the former
	// comparison sort produced, so the CSR is bit-identical — without the
	// O(m log m) global sort that dominates paper-scale graph builds.
	counts := make([]uint64, numVertices+1)
	for _, e := range edges {
		counts[e.Src+1]++
	}
	for v := 0; v < numVertices; v++ {
		counts[v+1] += counts[v]
	}
	tmp := make([]uint32, len(edges))
	cursor := make([]uint64, numVertices)
	copy(cursor, counts[:numVertices])
	for _, e := range edges {
		tmp[cursor[e.Src]] = e.Dst
		cursor[e.Src]++
	}
	// cursor is reused below as the per-vertex deduped degree.
	parallelOverVertices(numVertices, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			seg := tmp[counts[v]:counts[v+1]]
			slices.Sort(seg)
			n := len(seg)
			if dedup && n > 1 {
				n = 1
				for i := 1; i < len(seg); i++ {
					if seg[i] != seg[i-1] {
						seg[n] = seg[i]
						n++
					}
				}
			}
			cursor[v] = uint64(n)
		}
	})
	g := &Graph{
		Name:    name,
		Offsets: make([]uint64, numVertices+1),
	}
	for v := 0; v < numVertices; v++ {
		g.Offsets[v+1] = g.Offsets[v] + cursor[v]
	}
	g.Edges = make([]uint32, g.Offsets[numVertices])
	parallelOverVertices(numVertices, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			copy(g.Edges[g.Offsets[v]:g.Offsets[v+1]], tmp[counts[v]:])
		}
	})
	return g, nil
}

// parallelOverVertices splits [0, n) into one contiguous range per
// available core and runs fn on each concurrently. The split affects
// only scheduling, never results: callers touch disjoint state per
// vertex.
func parallelOverVertices(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Reverse returns the transpose of g (weights, if any, follow their
// edges).
func (g *Graph) Reverse() *Graph {
	n := g.NumVertices()
	r := &Graph{
		Name:    g.Name + "-rev",
		Offsets: make([]uint64, n+1),
		Edges:   make([]uint32, len(g.Edges)),
	}
	if g.Weights != nil {
		r.Weights = make([]float32, len(g.Edges))
	}
	for _, d := range g.Edges {
		r.Offsets[d+1]++
	}
	for v := 0; v < n; v++ {
		r.Offsets[v+1] += r.Offsets[v]
	}
	cursor := make([]uint64, n)
	copy(cursor, r.Offsets[:n])
	for src := 0; src < n; src++ {
		for i := g.Offsets[src]; i < g.Offsets[src+1]; i++ {
			d := g.Edges[i]
			pos := cursor[d]
			cursor[d]++
			r.Edges[pos] = uint32(src)
			if g.Weights != nil {
				r.Weights[pos] = g.Weights[i]
			}
		}
	}
	return r
}

// Symmetrize returns a graph with every edge present in both directions
// (deduplicated). Weights are dropped; call AttachWeights afterwards if
// needed.
func (g *Graph) Symmetrize() (*Graph, error) {
	edges := make([]Edge, 0, 2*len(g.Edges))
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		for _, d := range g.Neighbors(v) {
			edges = append(edges, Edge{uint32(v), d})
			edges = append(edges, Edge{d, uint32(v)})
		}
	}
	return FromEdges(g.Name+"-sym", n, edges, true)
}

// MaxDegreeVertex returns the vertex with the highest out-degree (ties
// broken toward the lowest id) — a deterministic, well-connected source
// for traversal kernels.
func (g *Graph) MaxDegreeVertex() int {
	best, bestDeg := 0, -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}
