package graph

import (
	"testing"
)

func TestDatasetsListedInPaperOrder(t *testing.T) {
	want := []string{"pokec", "rmat24", "twitter", "rmat27", "friendster"}
	got := DatasetNames()
	if len(got) != len(want) {
		t.Fatalf("names %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("dataset %d = %s, want %s (Table 2 order)", i, got[i], want[i])
		}
	}
}

func TestLoadAllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	for _, name := range DatasetNames() {
		g, err := Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Weights == nil {
			t.Errorf("%s: no weights attached", name)
		}
		if g.NumVertices() < 30000 || g.NumEdges() < 400000 {
			t.Errorf("%s: suspiciously small (V=%d E=%d)", name, g.NumVertices(), g.NumEdges())
		}
		st := ComputeDegreeStats(g)
		if st.TopShare[0.10] < 0.15 {
			t.Errorf("%s: top-10%% share %.2f, all datasets must be skewed", name, st.TopShare[0.10])
		}
	}
}

func TestLoadIsCached(t *testing.T) {
	a, err := Load("pokec")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load("pokec")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Load did not return the cached graph")
	}
}

func TestLoadUnknownDataset(t *testing.T) {
	if _, err := Load("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestLoadReverseAndSymmetricCached(t *testing.T) {
	r1, err := LoadReverse("pokec")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := LoadReverse("pokec")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("LoadReverse not cached")
	}
	s1, err := LoadSymmetric("pokec")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := LoadSymmetric("pokec")
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("LoadSymmetric not cached")
	}
	g, _ := Load("pokec")
	if r1.NumEdges() != g.NumEdges() {
		t.Error("reverse edge count mismatch")
	}
	if s1.NumEdges() < g.NumEdges() {
		t.Error("symmetric graph smaller than original")
	}
}

func TestTwitterIsTheMostSkewed(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	// The dataset regimes of DESIGN.md §5: twitter has the heaviest
	// hub concentration, friendster the flattest of the social graphs.
	tw, err := Load("twitter")
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Load("friendster")
	if err != nil {
		t.Fatal(err)
	}
	twShare := ComputeDegreeStats(tw).TopShare[0.01]
	frShare := ComputeDegreeStats(fr).TopShare[0.01]
	if twShare <= frShare {
		t.Errorf("twitter top-1%% share %.3f <= friendster %.3f", twShare, frShare)
	}
}

func TestClearCache(t *testing.T) {
	a, _ := Load("pokec")
	ClearCache()
	b, err := Load("pokec")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("ClearCache kept the cached graph")
	}
	// Rebuilt graphs are bit-identical (determinism).
	if a.NumEdges() != b.NumEdges() {
		t.Error("rebuild differs from original")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("rebuild edge mismatch")
		}
	}
}

func TestRegisterDataset(t *testing.T) {
	RegisterDataset("tiny-custom", func() (*Graph, error) {
		return FromEdges("tiny-custom", 3, []Edge{{0, 1}, {1, 2}, {2, 0}}, true)
	})
	g, err := Load("tiny-custom")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Errorf("custom dataset shape V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Weights == nil {
		t.Error("Load did not attach weights to the custom dataset")
	}
	// Cached on second load.
	g2, err := Load("tiny-custom")
	if err != nil {
		t.Fatal(err)
	}
	if g != g2 {
		t.Error("custom dataset not cached")
	}
	// Re-registering replaces the builder and drops the cache.
	RegisterDataset("tiny-custom", func() (*Graph, error) {
		return FromEdges("tiny-custom", 4, []Edge{{0, 1}, {1, 2}, {2, 3}}, true)
	})
	g3, err := Load("tiny-custom")
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumVertices() != 4 {
		t.Error("re-registration did not replace the dataset")
	}
	// Derived variants work for custom datasets too.
	if _, err := LoadReverse("tiny-custom"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSymmetric("tiny-custom"); err != nil {
		t.Fatal(err)
	}
}
