// Package atmem is a reproduction of ATMem (CGO 2020): a runtime
// framework for adaptive-granularity data placement of graph-application
// data on heterogeneous memory systems (HMS).
//
// The package exposes the paper's Listing-1 API — register data objects,
// profile one iteration with a sampling profiler, then Optimize to migrate
// the critical data chunks onto the high-performance memory — on top of a
// simulated HMS (see internal/memsim and DESIGN.md for the calibration of
// the two testbeds against the paper's hardware).
//
// A minimal session:
//
//	rt, _ := atmem.NewRuntime(atmem.NVMDRAM())
//	ranks, _ := atmem.NewArray[float64](rt, "ranks", n)
//	rt.ProfilingStart()
//	rt.RunPhase("iter0", func(c *atmem.Ctx) { ... ranks.Load(c, i) ... })
//	rt.ProfilingStop()
//	rt.Optimize()
//	res := rt.RunPhase("iter1", func(c *atmem.Ctx) { ... })
package atmem

import (
	"fmt"

	"atmem/internal/core"
	"atmem/internal/faultinject"
	"atmem/internal/governor"
	"atmem/internal/health"
	"atmem/internal/memsim"
	"atmem/internal/metrics"
	"atmem/internal/migrate"
	"atmem/internal/pebs"
	"atmem/internal/telemetry"
)

// Testbed selects one of the two simulated HMS platforms of the paper's
// Table 1.
type Testbed struct {
	params memsim.SystemParams
}

// Params returns a copy of the underlying simulator parameters.
func (t Testbed) Params() memsim.SystemParams { return t.params }

// Name returns the testbed name ("nvm-dram" or "mcdram-dram").
func (t Testbed) Name() string { return t.params.Name }

// NVMDRAM returns the Intel Optane NVM + DDR4 DRAM testbed: DRAM is the
// small fast tier, Optane the large slow tier.
func NVMDRAM() Testbed { return Testbed{params: memsim.NVMDRAMParams()} }

// MCDRAMDRAM returns the Knights Landing testbed: MCDRAM is the small
// high-bandwidth tier, DDR4 the large tier.
func MCDRAMDRAM() Testbed { return Testbed{params: memsim.MCDRAMDRAMParams()} }

// CustomTestbed wraps caller-provided simulator parameters (validated at
// NewRuntime).
func CustomTestbed(p memsim.SystemParams) Testbed { return Testbed{params: p} }

// Policy is the data placement policy of a runtime.
type Policy int

const (
	// PolicyBaseline allocates everything on the large-capacity memory
	// — the paper's baseline on both testbeds (all-NVM; all-DDR4).
	PolicyBaseline Policy = iota
	// PolicyAllFast allocates everything on the high-performance
	// memory — the paper's NVM-DRAM ideal reference (all-DRAM). It
	// fails when capacity runs out.
	PolicyAllFast
	// PolicyPreferFast allocates on the high-performance memory until
	// it fills, then spills to the large memory — `numactl -p`, the
	// paper's MCDRAM-DRAM ideal reference (MCDRAM-p).
	PolicyPreferFast
	// PolicyATMem allocates on the large memory and relies on
	// profiling + Optimize to migrate critical chunks to the fast
	// memory.
	PolicyATMem
)

func (p Policy) String() string {
	switch p {
	case PolicyBaseline:
		return "baseline"
	case PolicyAllFast:
		return "all-fast"
	case PolicyPreferFast:
		return "prefer-fast"
	case PolicyATMem:
		return "atmem"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// MigrationMechanism selects the engine Optimize uses to move data.
type MigrationMechanism int

const (
	// MigrateATMem is the paper's multi-stage multi-threaded
	// application-level migration (§4.4).
	MigrateATMem MigrationMechanism = iota
	// MigrateMbind is the system-service baseline (§2.3).
	MigrateMbind
)

func (m MigrationMechanism) String() string {
	switch m {
	case MigrateATMem:
		return "atmem"
	case MigrateMbind:
		return "mbind"
	}
	return fmt.Sprintf("MigrationMechanism(%d)", int(m))
}

// Options configures a Runtime beyond the testbed.
type Options struct {
	// Policy is the placement policy as a legacy enum; default
	// PolicyATMem. Ignored when Placement is set.
	//
	// Deprecated: use Placement (or WithPlacementPolicy) with a
	// PlacementPolicy value. The enum survives as a shim: each value
	// resolves to its named built-in via BuiltinPolicy.
	Policy Policy
	// Placement is the placement policy as a first-class object (see
	// PlacementPolicy): PaperPolicy, OraclePolicy, LearnedPolicy,
	// StaticPolicy, or a caller-defined implementation. When nil, the
	// deprecated Policy enum decides. Policies are validated at
	// construction.
	Placement PlacementPolicy
	// Threads overrides the testbed's simulated thread count (0 keeps
	// the preset).
	Threads int
	// Analyzer overrides the analyzer configuration; the zero value
	// means core.DefaultConfig(). Sweeping Analyzer.Epsilon reproduces
	// Figures 9 and 10.
	Analyzer core.Config
	// Mechanism selects the migration engine; default MigrateATMem.
	Mechanism MigrationMechanism
	// SamplePeriod fixes the profiler period; 0 enables the automatic
	// adjustment of §5.1.
	SamplePeriod uint64
	// SampleOverheadNS overrides the per-sample capture cost; 0 keeps
	// the default.
	SampleOverheadNS float64
	// CapacityReserve holds back this many bytes of fast memory from
	// the placement budget (staging headroom and "other tenants" in
	// the shared-server scenario of §1). Default: one staging buffer.
	// When the reserve consumes the entire remaining fast-tier
	// capacity, Optimize does not run the analyzer or the migration
	// engine at all: it returns an empty plan/report (SelectedBytes
	// and BytesMoved zero) rather than an error — a fully-reserved
	// tier is an operating condition, not a failure.
	CapacityReserve uint64
	// FaultSchedule, when non-nil, arms deterministic fault injection
	// at the simulator's capacity-mutating operations (allocation,
	// staging reservation, remap, huge-page splinter). Injected faults
	// exercise the transactional migration path: Optimize degrades
	// through rollback, staging-shrink retries, and region skips
	// instead of failing. Inspect what fired via Runtime.FaultEvents.
	FaultSchedule *faultinject.Schedule
	// Recorder, when non-nil, attaches a telemetry recorder to the
	// runtime: every phase, profiling window, analyzer stage, migration
	// region, and injected fault is recorded as a dual-clock event
	// (simulated + host), exportable as a Perfetto-loadable Chrome
	// trace, a CSV timeline, or a chunk-heat dump (see
	// Runtime.WriteTrace). A nil Recorder disables telemetry at the
	// cost of one pointer test per lifecycle point; the simulated-
	// access hot path is never instrumented.
	Recorder *telemetry.Recorder
	// Governor enables the epoch-adaptive placement governor: residency
	// -aware delta plans, pressure-driven demotion between watermarks,
	// and a migration circuit breaker. With Governor.Enabled, Optimize
	// migrates only the difference between the fresh plan and what is
	// already fast-resident (promotions of newly-hot ranges, demotions
	// of cold-for-N-epochs ranges scheduled first so reclaimed capacity
	// funds the promotions), and Runtime.RunEpoch drives the repeated
	// profile→run→optimize loop. The governor pairs with PolicyATMem:
	// residency tracking assumes objects start on the large memory and
	// reach the fast tier only through migration.
	Governor GovernorOptions
	// BandwidthAware enables the aggregate-bandwidth placement
	// enhancement the paper sketches as future work (§9): on systems
	// whose tiers have independent memory channels (KNL), deliberately
	// leaving the coldest fraction of the selection on the large
	// memory lets both channels serve traffic concurrently. The
	// fraction left behind is slowBW/(slowBW+fastBW) of the selected
	// bytes. Ignored on shared-channel systems (Optane), where
	// splitting traffic only serializes it.
	BandwidthAware bool
	// PlanCache, when non-nil, enables compiled-plan record/replay on a
	// governed runtime (see Runtime.ArmPlan): a first governed run
	// records its per-epoch placement decisions into a static migration
	// DAG keyed by the workload signature; subsequent runs with a
	// matching signature replay the cached schedule, skipping profiling
	// and analysis entirely. A shared cache lets many runtimes in one
	// process (e.g. a benchmark suite) reuse each other's plans.
	PlanCache *core.PlanCache
	// Async configures overlapped background placement: RunEpochAsync
	// migrates the previous interval's plan on a service goroutine while
	// the next interval's phases run, the way the paper's service
	// threads overlap the application. Async.Enabled implies
	// Governor.Enabled (the pipeline is built on the governed delta
	// planner).
	Async AsyncOptions
	// Health configures the tier-health subsystem: a per-granule error
	// scoreboard feeding exponential-backoff distrust and persistent
	// -fault quarantine, and (with Health.Scrub) a CRC-32C scrubber
	// that walks the fast-tier residency between governed epochs,
	// repairs detected corruption from its backup, emergency-demotes
	// the damaged chunk, and retires its pages from the allocatable
	// fast-tier capacity. See health.go.
	Health HealthOptions
	// Retry shapes the per-region degradation ladder shared by both
	// migration engines and the scrubber's emergency demotion path. The
	// zero value keeps each engine's historical ladder (see
	// migrate.RetryPolicy).
	Retry migrate.RetryPolicy
	// Metrics, when non-nil, attaches a live metrics registry: per-tier
	// traffic and occupancy, epoch/analyze/migrate latency histograms,
	// governor and health counters, and the per-epoch placement-quality
	// scorecard gauges, all scrapeable concurrently with the run (see
	// metrics.go and internal/metrics). A nil registry disables metrics
	// at the cost of one pointer test per boundary; the simulated-access
	// hot path is never instrumented. Construct with NewMetricsRegistry.
	Metrics *metrics.Registry
	// DebugAddr, when non-empty, starts the debug HTTP listener on that
	// address (":0" picks a free port; read it back via
	// Runtime.DebugAddr): /metrics serves Prometheus text, /epochz the
	// latest scorecard as JSON, /healthz a liveness probe, and
	// /debug/pprof/ the usual profiles. Implies Metrics (a registry is
	// created if none was given). Call Runtime.Close to stop it.
	DebugAddr string
	// ScorecardSink, when non-nil, receives every per-epoch Scorecard as
	// the epoch boundary computes it (control-plane goroutine, governed
	// runs only). The harness uses it to stream scorecard rows into
	// experiment reports.
	ScorecardSink func(Scorecard)
	// Tenant, when non-nil, attaches the runtime to a multi-tenant
	// broker (see NewBroker): the runtime allocates from the broker's
	// shared memory system instead of building its own, its governed
	// placement budget is capped by the broker-granted share (minus its
	// own quarantine debit), its migrations and health passes serialize
	// against co-tenants through the broker's placement lock, and each
	// epoch reports a scorecard signal back to the broker's arbiter.
	// Implies Governor.Enabled. A FaultSchedule installed by a tenant
	// runtime hooks the shared system (last writer wins) — aim faults
	// with range scopes so only the intended tenant's ranges fire.
	Tenant *Tenant

	// placementNil marks an explicit WithPlacementPolicy(nil): unlike
	// the zero Options (which falls back to the Policy enum), a caller
	// who passed nil on purpose gets ErrNilPolicy at construction.
	placementNil bool
}

// HealthOptions configures the tier-health subsystem (see
// Options.Health).
type HealthOptions struct {
	// Enabled turns the error scoreboard and self-healing placement on.
	Enabled bool
	// Scrub additionally enables the between-epoch CRC scrubber;
	// implies Enabled.
	Scrub bool
	// Policy tunes granularity, windows, backoff, and scrub bandwidth;
	// zero fields take the health package defaults.
	Policy health.Policy
}

// AsyncOptions configures overlapped background placement (see
// Runtime.RunEpochAsync).
type AsyncOptions struct {
	// Enabled turns the overlapped pipeline on, implying
	// Governor.Enabled.
	Enabled bool
	// StealFraction is the fraction of overlapped migration time that
	// still surfaces on the simulated clock as slowdown of the
	// concurrent phases — the bandwidth the background copy steals from
	// the kernels. 0 means the default 0.25; values are clamped to
	// [0, 1].
	StealFraction float64
}

// GovernorOptions configures the epoch-adaptive placement governor
// (see internal/governor for the mechanism and defaults). Zero fields
// take the governor defaults.
type GovernorOptions struct {
	// Enabled turns the governor on.
	Enabled bool
	// HighWatermark is the fast-tier occupancy fraction (of capacity
	// minus CapacityReserve) above which pressure demotion engages.
	// Default 0.90.
	HighWatermark float64
	// LowWatermark is the fraction pressure demotion drains down to
	// before admitting new promotions. Default 0.75.
	LowWatermark float64
	// DemoteAfterEpochs is the hysteresis window: a fast-resident chunk
	// must stay outside the plan's selection for this many consecutive
	// epochs before it is demoted. Default 2.
	DemoteAfterEpochs int
	// BreakerThreshold is how many consecutive degraded epochs (skipped
	// regions or migration failures) open the circuit breaker. Default 2.
	BreakerThreshold int
	// BreakerCooldown is the initial number of epochs an open breaker
	// skips migration for; each failed half-open probe doubles it, and a
	// successful probe resets it. Default 2.
	BreakerCooldown int
	// MaxCooldown caps the exponential backoff. Default 32.
	MaxCooldown int
}

// governorConfig maps the options onto the governor package's config,
// applying its defaults.
func (g GovernorOptions) governorConfig() governor.Config {
	return governor.Config{
		HighWatermark:     g.HighWatermark,
		LowWatermark:      g.LowWatermark,
		DemoteAfterEpochs: g.DemoteAfterEpochs,
		BreakerThreshold:  g.BreakerThreshold,
		BreakerCooldown:   g.BreakerCooldown,
		MaxCooldown:       g.MaxCooldown,
	}.WithDefaults()
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Analyzer == (core.Config{}) {
		out.Analyzer = core.DefaultConfig()
	}
	if out.SampleOverheadNS == 0 {
		out.SampleOverheadNS = pebs.DefaultConfig().SampleOverheadNS
	}
	if out.CapacityReserve == 0 {
		out.CapacityReserve = defaultStagingBytes
	}
	if out.Async.Enabled {
		out.Governor.Enabled = true
	}
	if out.Tenant != nil {
		// Broker budgets are enforced by the governed placement loop;
		// an ungoverned tenant could not honor its share.
		out.Governor.Enabled = true
	}
	if out.Async.StealFraction == 0 {
		out.Async.StealFraction = defaultStealFraction
	}
	if out.Async.StealFraction < 0 {
		out.Async.StealFraction = 0
	}
	if out.Async.StealFraction > 1 {
		out.Async.StealFraction = 1
	}
	if out.Health.Scrub {
		out.Health.Enabled = true
	}
	if out.DebugAddr != "" && out.Metrics == nil {
		// A debug listener without a registry would serve an empty
		// /metrics; the listener implies live metrics.
		out.Metrics = metrics.New(metricsShards)
	}
	return out
}

const defaultStagingBytes = 2 << 20

// defaultStealFraction is the share of overlapped migration seconds
// charged to the simulated clock (see AsyncOptions.StealFraction).
const defaultStealFraction = 0.25

// newEngine builds the configured migration engine; both engines share
// the configured retry policy.
func (o *Options) newEngine(threads int) migrate.Engine {
	switch o.Mechanism {
	case MigrateMbind:
		return &migrate.MbindEngine{Retry: o.Retry}
	default:
		return &migrate.ATMemEngine{Threads: threads, StagingBytes: defaultStagingBytes, Retry: o.Retry}
	}
}
