module atmem

go 1.22
