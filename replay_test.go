package atmem

import (
	"testing"

	"atmem/internal/core"
	"atmem/internal/faultinject"
	"atmem/internal/memsim"
)

// replayFixture builds a governed runtime wired to the given plan cache,
// with the hot/cold array pair the governor tests use. Allocation is
// deterministic, so two identically-built fixtures place their objects
// at identical addresses — the property that makes recorded absolute
// ranges replayable.
func replayFixture(t *testing.T, pc *core.PlanCache, opts ...Option) (*Runtime, *Array[uint64]) {
	t.Helper()
	all := append([]Option{
		WithPolicy(PolicyATMem),
		WithSamplePeriod(64),
		WithGovernor(GovernorOptions{}),
		WithPlanCache(pc),
	}, opts...)
	rt, err := New(NVMDRAM(), all...)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := NewArray[uint64](rt, "hot", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewArray[uint64](rt, "cold", 256<<10); err != nil {
		t.Fatal(err)
	}
	fillDeterministic(hot, 7)
	return rt, hot
}

// tierLayout snapshots every registered object's per-tier byte split —
// the ground truth a replay must reproduce bit for bit.
func tierLayout(rt *Runtime) map[string][memsim.NumTiers]uint64 {
	out := make(map[string][memsim.NumTiers]uint64)
	for _, o := range rt.Objects() {
		out[o.Name()] = rt.System().BytesOnTier(o.Base(), o.Size())
	}
	return out
}

// TestPlanRecordReplayEquivalence is the end-to-end contract: a governed
// run records its placement decisions, and a second identically-shaped
// run replays them — zero profiling, zero analysis — landing on the
// identical final tier layout and residency.
func TestPlanRecordReplayEquivalence(t *testing.T) {
	pc := core.NewPlanCache()
	const epochs = 3

	rec, hot := replayFixture(t, pc)
	sig := rec.BuildSignature("synthetic", 0x1234, []string{"scan"})
	if v, err := rec.ArmPlan(sig); err != nil || v != core.LookupMiss {
		t.Fatalf("first ArmPlan = (%v, %v), want miss", v, err)
	}
	if rec.Replaying() {
		t.Fatal("recording run claims to be replaying")
	}
	for e := 0; e < epochs; e++ {
		rep := epochOn(t, rec, "e", hot)
		if rep.Replayed {
			t.Fatalf("recording epoch %d marked Replayed", e+1)
		}
	}
	plan, err := rec.FinishPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Epochs != epochs {
		t.Fatalf("plan recorded %d epochs, want %d", plan.Epochs, epochs)
	}
	if len(plan.Steps) == 0 {
		t.Fatal("plan recorded no steps (first epoch must promote)")
	}
	wantLayout := tierLayout(rec)
	wantResident := rec.ResidentBytes()
	if plan.FinalFastBytes != wantResident {
		t.Errorf("plan FinalFastBytes %d != recorded residency %d", plan.FinalFastBytes, wantResident)
	}

	rep, hot2 := replayFixture(t, pc)
	sig2 := rep.BuildSignature("synthetic", 0x1234, []string{"scan"})
	if sig2.Key() != sig.Key() {
		t.Fatalf("identical fixtures produced different signatures:\n%s\n%s", sig.Key(), sig2.Key())
	}
	if v, err := rep.ArmPlan(sig2); err != nil || v != core.LookupHit {
		t.Fatalf("second ArmPlan = (%v, %v), want hit", v, err)
	}
	if !rep.Replaying() {
		t.Fatal("replay run not in replay mode after a hit")
	}
	for e := 0; e < epochs; e++ {
		er, err := rep.RunEpoch("e", func() { scanPhase(rep, "e", hot2) })
		if err != nil {
			t.Fatal(err)
		}
		if !er.Replayed {
			t.Fatalf("replay epoch %d not marked Replayed", e+1)
		}
		if er.Samples != 0 {
			t.Fatalf("replay epoch %d attributed %d samples, want 0 (profiling off)", e+1, er.Samples)
		}
	}
	if got := rep.SampleCount(); got != 0 {
		t.Errorf("replay run captured %d profiler samples, want 0", got)
	}
	if _, err := rep.FinishPlan(); err != nil {
		t.Fatal(err)
	}

	if got := rep.ResidentBytes(); got != wantResident {
		t.Errorf("replay residency %d != recorded %d", got, wantResident)
	}
	gotLayout := tierLayout(rep)
	for name, want := range wantLayout {
		if gotLayout[name] != want {
			t.Errorf("object %q tier layout %v != recorded %v", name, gotLayout[name], want)
		}
	}
	assertDataIntact(t, "replayed hot", hot2, 7)
	if err := rep.System().CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestPlanStaleFallsBackOnline is the invalidation contract (a stale
// plan must never be replayed silently): any strict signature field
// differing — graph content, thread count, a policy knob — yields
// LookupStale, leaves the runtime in the online loop, and the epochs
// profile and optimize normally.
func TestPlanStaleFallsBackOnline(t *testing.T) {
	pc := core.NewPlanCache()

	rec, hot := replayFixture(t, pc)
	sig := rec.BuildSignature("synthetic", 0x1234, []string{"scan"})
	if _, err := rec.ArmPlan(sig); err != nil {
		t.Fatal(err)
	}
	epochOn(t, rec, "e1", hot)
	if _, err := rec.FinishPlan(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		opts []Option
		// mutate derives the lookup signature the run arms with.
		mutate func(*Runtime) core.Signature
	}{
		{"graph-crc", nil, func(rt *Runtime) core.Signature {
			return rt.BuildSignature("synthetic", 0x9999, []string{"scan"})
		}},
		{"thread-count", []Option{WithThreads(4)}, func(rt *Runtime) core.Signature {
			return rt.BuildSignature("synthetic", 0x1234, []string{"scan"})
		}},
		{"policy-knob", []Option{WithSamplePeriod(128)}, func(rt *Runtime) core.Signature {
			return rt.BuildSignature("synthetic", 0x1234, []string{"scan"})
		}},
		{"governor-knob", []Option{WithGovernor(GovernorOptions{DemoteAfterEpochs: 5})}, func(rt *Runtime) core.Signature {
			return rt.BuildSignature("synthetic", 0x1234, []string{"scan"})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt, hot := replayFixture(t, pc, tc.opts...)
			v, err := rt.ArmPlan(tc.mutate(rt))
			if err != nil {
				t.Fatal(err)
			}
			if v != core.LookupStale {
				t.Fatalf("verdict = %v, want stale", v)
			}
			if rt.Replaying() {
				t.Fatal("stale plan was armed for replay")
			}
			// The fallback is the full online loop: the epoch profiles
			// and optimizes on its own samples.
			er := epochOn(t, rt, "e1", hot)
			if er.Replayed {
				t.Fatal("stale-fallback epoch marked Replayed")
			}
			if er.Samples == 0 || !er.Optimized {
				t.Fatalf("stale-fallback epoch did not run the online loop: %+v", er)
			}
			// And the fallback records a fresh plan under the new
			// signature, so the next identical run hits.
			if _, err := rt.FinishPlan(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPlanStaleAfterQuarantine pins the health half of the staleness
// contract: a plan recorded on healthy memory must not replay once
// pages have been quarantined — the cached schedule could land a
// promotion on retired pages. The quarantine bumps the health
// generation, the signature's Health field changes, and the lookup
// degrades to stale with a clean online fallback.
func TestPlanStaleAfterQuarantine(t *testing.T) {
	pc := core.NewPlanCache()

	rec, hot := replayFixture(t, pc)
	sig := rec.BuildSignature("synthetic", 0x1234, []string{"scan"})
	if v, err := rec.ArmPlan(sig); err != nil || v != core.LookupMiss {
		t.Fatalf("recording ArmPlan = (%v, %v), want miss", v, err)
	}
	epochOn(t, rec, "e1", hot)
	if _, err := rec.FinishPlan(); err != nil {
		t.Fatal(err)
	}

	// An identically-built runtime would hit — until part of the hot
	// array's range (which the recorded plan promotes) is retired.
	rt, hot2 := replayFixture(t, pc)
	quarBase, quarSize := hot2.Object().Base(), uint64(64<<10)
	if err := rt.System().RetirePages(quarBase, quarSize); err != nil {
		t.Fatal(err)
	}
	sig2 := rt.BuildSignature("synthetic", 0x1234, []string{"scan"})
	if sig2.Key() == sig.Key() {
		t.Fatal("quarantine did not change the signature key")
	}
	v, err := rt.ArmPlan(sig2)
	if err != nil {
		t.Fatal(err)
	}
	if v != core.LookupStale {
		t.Fatalf("post-quarantine verdict = %v, want stale", v)
	}
	if rt.Replaying() {
		t.Fatal("stale plan was armed for replay despite quarantine")
	}

	// The fallback runs the online loop, and its governor must route
	// the hot set around the retired pages: nothing may be promoted
	// into the quarantined range, ever.
	er := epochOn(t, rt, "e1", hot2)
	if !er.Optimized || er.Replayed {
		t.Fatalf("fallback epoch did not run the online loop: %+v", er)
	}
	if on := rt.System().BytesOnTier(quarBase, quarSize); on[memsim.TierFast] != 0 {
		t.Errorf("%d bytes promoted into the quarantined range", on[memsim.TierFast])
	}
	if !rt.System().IsQuarantined(quarBase, quarSize) {
		t.Error("quarantine ledger lost the retired range")
	}
	assertDataIntact(t, "post-quarantine hot", hot2, 7)
	if err := rt.System().CheckConsistency(); err != nil {
		t.Error(err)
	}
	if _, err := rt.FinishPlan(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayFaultStormMatchesOnline drives the same persistent fault
// storm through an online run and a replayed run of the same recorded
// plan: both must degrade per-region through the transactional engine
// (skips, not errors), end on the identical tier layout, and leave the
// data bit-identical.
func TestReplayFaultStormMatchesOnline(t *testing.T) {
	pc := core.NewPlanCache()

	rec, hot := replayFixture(t, pc)
	sig := rec.BuildSignature("synthetic", 0x1234, []string{"scan"})
	if _, err := rec.ArmPlan(sig); err != nil {
		t.Fatal(err)
	}
	epochOn(t, rec, "e1", hot)
	if _, err := rec.FinishPlan(); err != nil {
		t.Fatal(err)
	}

	// Storm covering every registered byte: no promotion can commit in
	// either mode. Fixtures allocate deterministically, so both runs see
	// the same addresses and the same fault geometry.
	storm := func(rt *Runtime) {
		for _, o := range rt.Objects() {
			rt.ArmFaults(faultinject.Fault{
				Kind: faultinject.Persistent, Op: faultinject.OpRetier,
				Base: o.Base(), Size: o.Size(),
			})
		}
	}

	online, hotA := replayFixture(t, core.NewPlanCache())
	storm(online)
	onlineRep, err := online.RunEpoch("e1", func() { scanPhase(online, "e1", hotA) })
	if err != nil {
		t.Fatal(err)
	}

	replay, hotB := replayFixture(t, pc)
	storm(replay)
	if v, err := replay.ArmPlan(replay.BuildSignature("synthetic", 0x1234, []string{"scan"})); err != nil || v != core.LookupHit {
		t.Fatalf("replay ArmPlan = (%v, %v), want hit", v, err)
	}
	replayRep, err := replay.RunEpoch("e1", func() { scanPhase(replay, "e1", hotB) })
	if err != nil {
		t.Fatal(err)
	}
	if !replayRep.Replayed {
		t.Fatal("storm epoch not replayed")
	}
	if _, err := replay.FinishPlan(); err != nil {
		t.Fatal(err)
	}

	// Both modes degraded per-region: promotions were attempted and
	// skipped, nothing moved, no error surfaced.
	om, rm := onlineRep.Migration, replayRep.Migration
	if om.RegionsSkipped == 0 || rm.RegionsSkipped == 0 {
		t.Fatalf("storm did not degrade: online skipped %d, replay skipped %d",
			om.RegionsSkipped, rm.RegionsSkipped)
	}
	if om.RegionsSkipped != rm.RegionsSkipped || om.BytesMoved != 0 || rm.BytesMoved != 0 {
		t.Errorf("outcomes diverged: online {skipped %d, moved %d}, replay {skipped %d, moved %d}",
			om.RegionsSkipped, om.BytesMoved, rm.RegionsSkipped, rm.BytesMoved)
	}
	// Identical end state: every object on the identical tiers, data
	// bit-identical to the deterministic fill in both modes.
	onLayout, reLayout := tierLayout(online), tierLayout(replay)
	for name, want := range onLayout {
		if reLayout[name] != want {
			t.Errorf("object %q layout online %v != replay %v", name, want, reLayout[name])
		}
	}
	assertDataIntact(t, "online under storm", hotA, 7)
	assertDataIntact(t, "replay under storm", hotB, 7)
	for _, rt := range []*Runtime{online, replay} {
		if err := rt.System().CheckConsistency(); err != nil {
			t.Error(err)
		}
	}
}

// TestArmPlanRequirements pins the preconditions: a plan cache, the
// governor, the synchronous loop, and one arm per session.
func TestArmPlanRequirements(t *testing.T) {
	sig := core.Signature{Graph: "g", Kernels: "k"}

	noCache, err := New(NVMDRAM(), WithGovernor(GovernorOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noCache.ArmPlan(sig); err == nil {
		t.Error("ArmPlan without a plan cache must fail")
	}

	ungoverned, err := New(NVMDRAM(), WithPlanCache(core.NewPlanCache()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ungoverned.ArmPlan(sig); err == nil {
		t.Error("ArmPlan without the governor must fail")
	}

	async, err := New(NVMDRAM(),
		WithPlanCache(core.NewPlanCache()),
		WithAsyncPlacement(AsyncOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := async.ArmPlan(sig); err == nil {
		t.Error("ArmPlan under async placement must fail")
	}

	pc := core.NewPlanCache()
	rt, _ := replayFixture(t, pc)
	if _, err := rt.ArmPlan(rt.BuildSignature("g", 1, []string{"k"})); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.ArmPlan(rt.BuildSignature("g", 1, []string{"k"})); err == nil {
		t.Error("double ArmPlan must fail")
	}
	if _, err := rt.FinishPlan(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.FinishPlan(); err == nil {
		t.Error("FinishPlan without an armed plan must fail")
	}
}
