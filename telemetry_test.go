package atmem

import (
	"bytes"
	"testing"

	"atmem/internal/faultinject"
	"atmem/internal/telemetry"
)

// runTracedCycle executes one full profile→optimize→run session with a
// recorder attached and returns the runtime and report.
func runTracedCycle(t *testing.T, sched *faultinject.Schedule) (*Runtime, MigrationReport) {
	t.Helper()
	rec := telemetry.NewRecorder()
	rt, err := NewRuntime(NVMDRAM(), Options{
		Policy: PolicyATMem, Recorder: rec, FaultSchedule: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := NewArray[uint64](rt, "hot", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewArray[uint64](rt, "cold", 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	phase := func(name string) {
		rt.RunPhase(name, func(c *Ctx) {
			lo, hi := c.Range(hot.Len())
			for rep := 0; rep < 8; rep++ {
				for i := lo; i < hi; i++ {
					hot.Load(c, (i*7919)%hot.Len())
				}
			}
			clo, chi := c.Range(cold.Len())
			for i := clo; i < chi; i++ {
				cold.Load(c, (i*104729)%cold.Len())
			}
		})
	}
	rt.ProfilingStart()
	phase("profile")
	if n := rt.ProfilingStop(); n == 0 {
		t.Fatal("no samples attributed")
	}
	rep, err := rt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	phase("after")
	return rt, rep
}

func TestTelemetryLifecycle(t *testing.T) {
	rt, rep := runTracedCycle(t, nil)
	rec := rt.Telemetry()
	if !rec.Enabled() {
		t.Fatal("recorder not attached")
	}
	// Two phases, each a balanced span, plus the profiling window and
	// the optimize span.
	if got := rec.CountEvents("phase", ""); got != 4 {
		t.Errorf("phase events %d, want 4 (2 spans)", got)
	}
	if got := rec.CountEvents("profile", "window"); got != 2 {
		t.Errorf("profile window events %d, want 2", got)
	}
	if got := rec.CountEvents("optimize", "optimize"); got != 2 {
		t.Errorf("optimize events %d, want 2", got)
	}
	for _, stage := range []string{"rank", "threshold", "promote", "clip"} {
		if got := rec.CountEvents("analyze", stage); got != 2 {
			t.Errorf("analyze/%s events %d, want 2", stage, got)
		}
	}
	// Terminal migration events partition the regions like the report.
	if got := rec.CountEvents("migrate", "region-migrated"); got != rep.RegionsMigrated {
		t.Errorf("region-migrated %d != RegionsMigrated %d", got, rep.RegionsMigrated)
	}
	if got := rec.CountEvents("migrate", "region-retried"); got != rep.RegionsRetried {
		t.Errorf("region-retried %d != RegionsRetried %d", got, rep.RegionsRetried)
	}
	if got := rec.CountEvents("migrate", "region-skipped"); got != rep.RegionsSkipped {
		t.Errorf("region-skipped %d != RegionsSkipped %d", got, rep.RegionsSkipped)
	}
	if rep.Regions == 0 {
		t.Fatal("nothing migrated; the telemetry assertions are vacuous")
	}

	// The simulated clock advanced: the last event sits at the sum of
	// the phase wall times plus the migration time (within fp rounding).
	events := rec.Events()
	var wantNS float64
	for _, pr := range rt.Phases() {
		wantNS += pr.Stats.WallSeconds * 1e9
	}
	wantNS += rep.Seconds * 1e9
	last := events[len(events)-1].SimNS
	if diff := float64(last) - wantNS; diff > 1000 || diff < -1000 {
		t.Errorf("final sim stamp %d ns, want ~%.0f ns", last, wantNS)
	}

	// The written trace parses back with identical event count.
	var buf bytes.Buffer
	if err := rt.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Errorf("trace round trip: %d events, want %d", len(back), len(events))
	}

	var heat bytes.Buffer
	if err := rt.WriteChunkHeat(&heat); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(heat.Bytes(), []byte("hot,")) {
		t.Error("chunk-heat dump missing the hot object")
	}
}

func TestTelemetryFaultEventsMatchInjector(t *testing.T) {
	rt, rep := runTracedCycle(t, &faultinject.Schedule{Faults: []faultinject.Fault{
		{Op: faultinject.OpReserve, Nth: 1},
	}})
	if rep.RegionsRetried == 0 {
		t.Fatal("injected staging fault did not force a retry")
	}
	// WriteTrace syncs pending fault events; afterwards the trace's
	// fault instants match the injector's event log one-to-one.
	var buf bytes.Buffer
	if err := rt.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := rt.Telemetry().CountEvents("fault", ""), len(rt.FaultEvents()); got != want {
		t.Errorf("fault events in trace %d != injector %d", got, want)
	}
	if rt.Telemetry().CountEvents("migrate", "region-rollback") == 0 {
		t.Error("no rollback event for the failed attempt")
	}
	if rt.Telemetry().CountEvents("migrate", "region-attempt") < 2 {
		t.Error("retry did not record a second attempt")
	}
}

func TestTelemetryDisabledByDefault(t *testing.T) {
	rt, err := NewRuntime(NVMDRAM())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Telemetry().Enabled() {
		t.Fatal("recorder attached without Options.Recorder")
	}
	a, err := NewArray[uint64](rt, "a", 1024)
	if err != nil {
		t.Fatal(err)
	}
	rt.ProfilingStart()
	rt.RunPhase("p", func(c *Ctx) {
		lo, hi := c.Range(a.Len())
		for i := lo; i < hi; i++ {
			a.Load(c, i)
		}
	})
	rt.ProfilingStop()
	// The writers still produce valid (empty) artifacts on a disabled
	// runtime.
	var buf bytes.Buffer
	if err := rt.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("disabled runtime emitted %d events", len(events))
	}
}
