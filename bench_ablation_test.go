// Ablation benchmarks for the design choices DESIGN.md §6 calls out:
// each one removes or distorts a single mechanism and reports how the
// placement decision and the resulting performance change, on PageRank /
// twitter on the NVM-DRAM testbed.
package atmem_test

import (
	"testing"

	"atmem"
	"atmem/apps"
	"atmem/internal/core"
)

// ablationRun executes the full pipeline under the given analyzer config
// and reports (measured iteration seconds, data ratio, migrated regions).
func ablationRun(b *testing.B, cfg core.Config) (float64, float64, int) {
	b.Helper()
	rt, err := atmem.NewRuntime(atmem.NVMDRAM(), atmem.Options{
		Policy:   atmem.PolicyATMem,
		Analyzer: cfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	k, err := apps.New("pr")
	if err != nil {
		b.Fatal(err)
	}
	if err := k.Setup(rt, "twitter"); err != nil {
		b.Fatal(err)
	}
	rt.ProfilingStart()
	k.RunIteration(rt)
	rt.ProfilingStop()
	rep, err := rt.Optimize()
	if err != nil {
		b.Fatal(err)
	}
	k.RunIteration(rt) // warm
	secs := k.RunIteration(rt).Seconds
	return secs, rep.DataRatio(), rep.Regions
}

// BenchmarkAblationTreePromotion compares the default analyzer against
// one whose tree promotion can never fire (base TR threshold 1 with
// ε ≈ 1), quantifying §4.3's patching of sampling gaps.
func BenchmarkAblationTreePromotion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		withCfg := core.DefaultConfig()
		tWith, ratioWith, regionsWith := ablationRun(b, withCfg)

		withoutCfg := core.DefaultConfig()
		withoutCfg.BaseTRThreshold = 1
		withoutCfg.Epsilon = 0.999999
		tWithout, _, regionsWithout := ablationRun(b, withoutCfg)

		b.ReportMetric(tWithout/tWith, "speedup-from-promotion")
		b.ReportMetric(float64(regionsWithout)/float64(max(regionsWith, 1)), "region-inflation")
		b.ReportMetric(100*ratioWith, "ratio-%")
	}
}

// BenchmarkAblationChunkGranularity sweeps the adaptive chunk target
// (§4.1): coarser chunks mean less metadata but blunter placement.
func BenchmarkAblationChunkGranularity(b *testing.B) {
	for _, target := range []int{16, 64, 256, 1024} {
		b.Run(map[int]string{16: "coarse16", 64: "chunks64", 256: "default256", 1024: "fine1024"}[target],
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := core.DefaultConfig()
					cfg.TargetChunksPerObject = target
					secs, ratio, _ := ablationRun(b, cfg)
					b.ReportMetric(secs*1e6, "iter-us")
					b.ReportMetric(100*ratio, "ratio-%")
				}
			})
	}
}

// BenchmarkAblationTreeArity sweeps m (§4.3.1): the paper notes a
// quad-tree offers more tree-ratio resolution than a binary tree.
func BenchmarkAblationTreeArity(b *testing.B) {
	for _, m := range []int{2, 4, 8} {
		b.Run(map[int]string{2: "binary", 4: "quad", 8: "oct"}[m], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.M = m
				cfg.Epsilon = 0.25 // hold ε fixed across arities
				secs, ratio, regions := ablationRun(b, cfg)
				b.ReportMetric(secs*1e6, "iter-us")
				b.ReportMetric(100*ratio, "ratio-%")
				b.ReportMetric(float64(regions), "regions")
			}
		})
	}
}

// BenchmarkAblationSamplingPeriod sweeps the profiler period (§5.1's
// overhead/accuracy trade-off) and reports where the selection lands.
func BenchmarkAblationSamplingPeriod(b *testing.B) {
	for _, period := range []uint64{16, 256, 4096} {
		b.Run(map[uint64]string{16: "fine16", 256: "mid256", 4096: "coarse4096"}[period],
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rt, err := atmem.NewRuntime(atmem.NVMDRAM(), atmem.Options{
						Policy:       atmem.PolicyATMem,
						SamplePeriod: period,
					})
					if err != nil {
						b.Fatal(err)
					}
					k, err := apps.New("pr")
					if err != nil {
						b.Fatal(err)
					}
					if err := k.Setup(rt, "twitter"); err != nil {
						b.Fatal(err)
					}
					rt.ProfilingStart()
					k.RunIteration(rt)
					samples := rt.ProfilingStop()
					rep, err := rt.Optimize()
					if err != nil {
						b.Fatal(err)
					}
					k.RunIteration(rt)
					secs := k.RunIteration(rt).Seconds
					b.ReportMetric(secs*1e6, "iter-us")
					b.ReportMetric(100*rep.DataRatio(), "ratio-%")
					b.ReportMetric(float64(samples), "samples")
				}
			})
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkBFSVariants compares plain push BFS against the
// direction-optimizing hybrid on the baseline placement: the hybrid's
// bottom-up rounds avoid most of the high-frontier edge traffic.
func BenchmarkBFSVariants(b *testing.B) {
	for _, name := range []string{"bfs", "dobfs"} {
		b.Run(name, func(b *testing.B) {
			rt, err := atmem.NewRuntime(atmem.NVMDRAM())
			if err != nil {
				b.Fatal(err)
			}
			k, err := apps.New(name)
			if err != nil {
				b.Fatal(err)
			}
			if err := k.Setup(rt, "twitter"); err != nil {
				b.Fatal(err)
			}
			var secs float64
			for i := 0; i < b.N; i++ {
				secs = k.RunIteration(rt).Seconds
			}
			b.ReportMetric(secs*1e6, "sim-us")
		})
	}
}

// BenchmarkExtensionExperiments regenerates the three extension
// artifacts (accuracy, locality, aggbw) against the shared suite.
func BenchmarkExtensionExperiments(b *testing.B) {
	for _, id := range []string{"accuracy", "locality", "aggbw"} {
		b.Run(id, func(b *testing.B) {
			runExperiment(b, id)
		})
	}
}
