package atmem

import (
	"context"
	"sync"
	"testing"

	"atmem/internal/faultinject"
	"atmem/internal/health"
	"atmem/internal/memsim"
)

// brokerFixture builds a broker over a shrunken fast tier plus one
// attached tenant runtime with the usual hot/cold array pair.
func brokerTenantRuntime(t *testing.T, tn *Tenant, extra ...Option) (*Runtime, *Array[uint64], *Array[uint64]) {
	t.Helper()
	opts := append([]Option{
		WithPolicy(PolicyATMem),
		WithSamplePeriod(64),
		WithTenant(tn),
	}, extra...)
	rt, err := New(NVMDRAM(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := NewArray[uint64](rt, tn.Name()+".hot", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	// 256 KiB hot + 4 MiB cold: enough combined demand that a floor-sized
	// share clips the plan, keeping the tenant's grant signal binding.
	cold, err := NewArray[uint64](rt, tn.Name()+".cold", 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	fillDeterministic(hot, 7)
	fillDeterministic(cold, 11)
	return rt, hot, cold
}

// concurrentRound runs one governed epoch on every runtime at once —
// the broker serving shape: kernels interleave freely on the shared
// system while the placement lock serializes migrations.
func concurrentRound(t *testing.T, name string, rts []*Runtime, arrays [][]*Array[uint64]) {
	t.Helper()
	errs := make([]error, len(rts))
	var wg sync.WaitGroup
	for i, rt := range rts {
		wg.Add(1)
		go func(i int, rt *Runtime) {
			defer wg.Done()
			_, errs[i] = rt.RunEpoch(name, func() { scanPhase(rt, name, arrays[i]...) })
		}(i, rt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("round %s tenant %d: %v", name, i, err)
		}
	}
}

// TestBrokerTwoTenantsConcurrentEpochs drives two burstable tenants
// through concurrent governed epochs on one shared system: both must
// reach fast residency inside their granted shares, the arbiter must
// grow a binding share from the pool, and the shared ledgers must stay
// consistent under the race detector.
func TestBrokerTwoTenantsConcurrentEpochs(t *testing.T) {
	bk := NewBroker(govTestbed(16<<20), BrokerConfig{QuantumBytes: 1 << 20})
	ta, err := bk.Admit(TenantSpec{Name: "a", Class: ClassBurstable, FloorBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := bk.Admit(TenantSpec{Name: "b", Class: ClassBurstable, FloorBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rtA, hotA, coldA := brokerTenantRuntime(t, ta)
	rtB, hotB, coldB := brokerTenantRuntime(t, tb)

	granted := false
	for round := 0; round < 8; round++ {
		concurrentRound(t, "serve", []*Runtime{rtA, rtB},
			[][]*Array[uint64]{{hotA, coldA}, {hotB, coldB}})
		if rep := bk.Rebalance(); rep.GrantedTo != "" {
			granted = true
		}
	}
	if !granted {
		t.Error("arbiter never granted a share despite binding budgets")
	}
	sys := bk.System()
	var sumFast uint64
	for _, tn := range []*Tenant{ta, tb} {
		u := sys.TenantUsage(tn.ID())
		if u.FastBytes == 0 {
			t.Errorf("tenant %s never reached the fast tier", tn.Name())
		}
		if tn.Share() < tn.Spec().FloorBytes {
			t.Errorf("tenant %s share %d fell below its floor", tn.Name(), tn.Share())
		}
		sumFast += u.FastBytes
	}
	if cap := bk.Capacity(); sumFast > cap {
		t.Errorf("tenants hold %d fast bytes over the %d capacity", sumFast, cap)
	}
	assertDataIntact(t, "tenant a hot", hotA, 7)
	assertDataIntact(t, "tenant b hot", hotB, 7)
	assertDataIntact(t, "tenant a cold", coldA, 11)
	assertDataIntact(t, "tenant b cold", coldB, 11)
	if err := sys.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestTenantCloseReleasesShareAndAdmitsQueued is the departure
// regression: Close on a tenant runtime with async placement enabled
// drains the in-flight plan, frees every object (so the sub-ledger and
// the shared tiers return to empty), and departs — at which point the
// queued tenant's floor fits and its Ready channel delivers.
func TestTenantCloseReleasesShareAndAdmitsQueued(t *testing.T) {
	bk := NewBroker(govTestbed(8<<20), BrokerConfig{})
	ta, err := bk.Admit(TenantSpec{Name: "a", Class: ClassGuaranteed, FloorBytes: 6 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pend, err := bk.Enqueue(TenantSpec{Name: "b", Class: ClassGuaranteed, FloorBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-pend.Ready():
		t.Fatal("tenant b admitted while a's floor holds 6 of 8 MiB")
	default:
	}

	rt, hot, cold := brokerTenantRuntime(t, ta, WithAsyncPlacement(AsyncOptions{}))
	ctx := context.Background()
	for _, name := range []string{"e1", "e2", "e3"} {
		if _, err := rt.RunEpochAsync(ctx, name, func() { scanPhase(rt, name, hot, cold) }); err != nil {
			t.Fatalf("epoch %s: %v", name, err)
		}
	}
	// Close while epoch 3's plan is still pending: the drain must land
	// it before the free, or staging reservations would leak.
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	sys := bk.System()
	if u := sys.TenantUsage(ta.ID()); u.FastBytes != 0 {
		t.Errorf("departed tenant still owns %d fast bytes", u.FastBytes)
	}
	if used := sys.Used(memsim.TierFast); used != 0 {
		t.Errorf("fast tier still holds %d bytes after departure", used)
	}
	if _, res := sys.TierUsage(memsim.TierFast); res != 0 {
		t.Errorf("departure leaked %d reserved staging bytes", res)
	}
	tb := <-pend.Ready()
	if tb == nil || tb.Name() != "b" {
		t.Fatalf("queued tenant not delivered after departure: %v", tb)
	}
	if err := rt.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := sys.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestBrokerQuarantineStormIsolation pins the fault-domain contract: a
// persistent-fault storm against one tenant's hot range condemns and
// quarantines pages charged to that tenant's sub-ledger only — the
// victim's effective budget shrinks while the bystander's budget,
// residency, and data stay untouched.
func TestBrokerQuarantineStormIsolation(t *testing.T) {
	bk := NewBroker(govTestbed(16<<20), BrokerConfig{QuantumBytes: 1 << 20})
	tv, err := bk.Admit(TenantSpec{Name: "victim", Class: ClassBurstable, FloorBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := bk.Admit(TenantSpec{Name: "bystander", Class: ClassBurstable, FloorBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	hp := WithHealthPolicy(health.Policy{Window: 4, PersistentThreshold: 2, BackoffEpochs: 1, MaxBackoff: 2})
	rtV, hotV, coldV := brokerTenantRuntime(t, tv, hp)
	rtB, hotB, coldB := brokerTenantRuntime(t, tb, hp)

	// The storm covers both of the victim's objects: under a clipped
	// budget the analyzer may promote either first, and every promotion
	// attempt must feed the scoreboard.
	rtV.ArmFaults(
		faultinject.Fault{
			Kind: faultinject.Persistent, Op: faultinject.OpRetier,
			Base: hotV.Object().Base(), Size: hotV.Object().Size(),
		},
		faultinject.Fault{
			Kind: faultinject.Persistent, Op: faultinject.OpRetier,
			Base: coldV.Object().Base(), Size: coldV.Object().Size(),
		},
	)
	for round := 0; round < 8 && rtV.HealthStats().Quarantined == 0; round++ {
		concurrentRound(t, "storm", []*Runtime{rtV, rtB},
			[][]*Array[uint64]{{hotV, coldV}, {hotB, coldB}})
		bk.Rebalance()
	}
	sys := bk.System()
	uv, ub := sys.TenantUsage(tv.ID()), sys.TenantUsage(tb.ID())
	if uv.QuarantinedBytes == 0 {
		t.Fatalf("storm never quarantined victim pages: %+v", rtV.HealthStats())
	}
	if ub.QuarantinedBytes != 0 {
		t.Errorf("bystander charged %d quarantined bytes for the victim's storm", ub.QuarantinedBytes)
	}
	var want uint64
	if uv.QuarantinedBytes < tv.Share() {
		want = tv.Share() - uv.QuarantinedBytes
	}
	if got := tv.Budget(); got != want {
		t.Errorf("victim budget %d; want share %d − debit %d", got, tv.Share(), uv.QuarantinedBytes)
	}
	if tb.Budget() != tb.Share() {
		t.Errorf("bystander budget %d debited below its %d share", tb.Budget(), tb.Share())
	}

	// Storm over: the bystander must still be serving from fast memory,
	// with both tenants' data bit-identical.
	rtV.DisarmFaults()
	concurrentRound(t, "after", []*Runtime{rtV, rtB},
		[][]*Array[uint64]{{hotV, coldV}, {hotB, coldB}})
	if ub := sys.TenantUsage(tb.ID()); ub.FastBytes == 0 {
		t.Error("bystander lost all fast residency to the victim's storm")
	}
	assertDataIntact(t, "victim hot", hotV, 7)
	assertDataIntact(t, "bystander hot", hotB, 7)
	assertDataIntact(t, "victim cold", coldV, 11)
	assertDataIntact(t, "bystander cold", coldB, 11)
	if err := sys.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestTenantBudgetDrainsWhenShed pins the SLO-aware degradation path
// end-to-end: the broker breaker opens under aggregate pressure, sheds
// the best-effort tenant (share and budget to zero, Shedding() true),
// and the tenant's own governed epochs then drain its fast residency
// back into the pool instead of squatting on a share it no longer has.
func TestTenantBudgetDrainsWhenShed(t *testing.T) {
	bk := NewBroker(govTestbed(8<<20), BrokerConfig{
		HighWatermark: 0.40, LowWatermark: 0.20, QuantumBytes: 1 << 20,
	})
	tn, err := bk.Admit(TenantSpec{Name: "be", Class: ClassBestEffort, BurstBytes: 6 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rt, hot, cold := brokerTenantRuntime(t, tn)
	// Let the arbiter feed the tenant until its footprint crosses the
	// broker's (tightened) global watermark, opening the breaker and
	// shedding it; its runtime must then drain its own residency.
	shedAt := -1
	for round := 0; round < 12; round++ {
		concurrentRound(t, "grow", []*Runtime{rt}, [][]*Array[uint64]{{hot, cold}})
		bk.Rebalance()
		if tn.IsShed() {
			shedAt = round
			break
		}
	}
	if shedAt < 0 {
		t.Fatalf("broker never shed the best-effort tenant (share %d, pressure never crossed?)", tn.Share())
	}
	if !bk.Shedding() {
		t.Error("Shedding() false while the shed list is non-empty")
	}
	if tn.Share() != 0 || tn.Budget() != 0 {
		t.Errorf("shed tenant keeps share %d budget %d", tn.Share(), tn.Budget())
	}
	// Shed tenant epochs drain residency (budget 1 → pressure demotions).
	for round := 0; round < 4 && bk.System().TenantUsage(tn.ID()).FastBytes > 0; round++ {
		concurrentRound(t, "drain", []*Runtime{rt}, [][]*Array[uint64]{{hot, cold}})
		bk.Rebalance()
	}
	if u := bk.System().TenantUsage(tn.ID()); u.FastBytes != 0 {
		t.Errorf("shed tenant still holds %d fast bytes after drain epochs", u.FastBytes)
	}
	assertDataIntact(t, "shed tenant hot", hot, 7)
}
