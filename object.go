package atmem

import (
	"fmt"
	"unsafe"

	"atmem/internal/core"
	"atmem/internal/memsim"
)

// Object is one registered simulated allocation: a contiguous virtual
// range divided into adaptive data chunks by the analyzer. Raw objects
// carry an optional byte backing; most code uses the typed Array views.
type Object struct {
	rt   *Runtime
	name string
	base uint64
	size uint64
	data []byte
	do   *core.DataObject
}

// Name returns the registration name.
func (o *Object) Name() string { return o.name }

// Base returns the simulated virtual base address.
func (o *Object) Base() uint64 { return o.base }

// Size returns the object size in bytes.
func (o *Object) Size() uint64 { return o.size }

// ChunkSize returns the adaptive chunk granularity the analyzer chose.
func (o *Object) ChunkSize() uint64 { return o.do.ChunkSize }

// NumChunks returns the chunk count.
func (o *Object) NumChunks() int { return o.do.NumChunks }

// Bytes returns the object's byte backing, allocating it on first use.
func (o *Object) Bytes() []byte {
	if o.data == nil {
		o.data = make([]byte, o.size)
	}
	return o.data
}

// FastBytes reports how many of the object's bytes currently reside on
// the high-performance memory.
func (o *Object) FastBytes() uint64 {
	return o.rt.sys.BytesOnTier(o.base, o.size)[memsim.TierFast]
}

// Element is the set of fixed-size numeric element types an Array can
// hold.
type Element interface {
	~int8 | ~uint8 | ~int16 | ~uint16 | ~int32 | ~uint32 |
		~int64 | ~uint64 | ~float32 | ~float64
}

// Array is a typed view over a registered Object: every Load/Store is
// simulated through the calling thread's memory access path (cache, TLB,
// tier latency and bandwidth) and lands on real Go memory, so kernels
// compute real results while the simulator accounts their cost.
type Array[T Element] struct {
	obj      *Object
	elems    []T
	elemSize uint64
}

// NewArray allocates and registers an array of n elements of type T under
// the given name, following the runtime's placement policy.
func NewArray[T Element](rt *Runtime, name string, n int) (*Array[T], error) {
	if n < 0 {
		return nil, fmt.Errorf("atmem: NewArray %q with negative length", name)
	}
	var zero T
	es := uint64(unsafe.Sizeof(zero))
	size := es * uint64(n)
	if size == 0 {
		size = es // keep zero-length arrays addressable
	}
	obj, err := rt.Malloc(name, size)
	if err != nil {
		return nil, err
	}
	a := &Array[T]{
		obj:      obj,
		elems:    make([]T, n),
		elemSize: es,
	}
	if n > 0 {
		// Alias the object's byte backing to the array storage, so the
		// CRC scrubber, injected corruption, and checksum invariants all
		// operate on the bytes kernels actually compute on, not a
		// shadow buffer.
		obj.data = unsafe.Slice((*byte)(unsafe.Pointer(&a.elems[0])), es*uint64(n))
	}
	return a, nil
}

// Free releases the array's simulated allocation.
func (a *Array[T]) Free() error {
	err := a.obj.rt.Free(a.obj)
	a.elems = nil
	return err
}

// Object returns the underlying registered object.
func (a *Array[T]) Object() *Object { return a.obj }

// Len returns the element count.
func (a *Array[T]) Len() int { return len(a.elems) }

// ElemSize returns the element size in bytes.
func (a *Array[T]) ElemSize() uint64 { return a.elemSize }

// Addr returns the simulated virtual address of element i.
func (a *Array[T]) Addr(i int) uint64 {
	return a.obj.base + uint64(i)*a.elemSize
}

// Load reads element i through the simulated memory system.
func (a *Array[T]) Load(c *Ctx, i int) T {
	c.acc.Load(a.Addr(i), uint32(a.elemSize))
	return a.elems[i]
}

// Store writes element i through the simulated memory system.
func (a *Array[T]) Store(c *Ctx, i int, v T) {
	c.acc.Store(a.Addr(i), uint32(a.elemSize))
	a.elems[i] = v
}

// SimLoad charges a simulated read of element i without touching the
// backing data — used by kernels that read the element through an atomic
// operation on Raw() (the simulator tracks cost, the atomic op provides
// the synchronized value).
func (a *Array[T]) SimLoad(c *Ctx, i int) {
	c.acc.Load(a.Addr(i), uint32(a.elemSize))
}

// SimStore charges a simulated write of element i without touching the
// backing data — the counterpart of SimLoad for CAS-updated elements.
func (a *Array[T]) SimStore(c *Ctx, i int) {
	c.acc.Store(a.Addr(i), uint32(a.elemSize))
}

// LoadSeq charges a sequential simulated read of elements [lo, hi) and
// returns the backing subslice holding their values. The charge is
// exactly equivalent to hi-lo individual Load calls (same cycles,
// counters, and cache/TLB state) but is accounted per cache line, which
// is what makes streaming kernels cheap to simulate. The returned slice
// aliases the array's backing store; callers must treat it as read-only.
func (a *Array[T]) LoadSeq(c *Ctx, lo, hi int) []T {
	if hi > lo {
		c.acc.LoadRange(a.Addr(lo), uint32(a.elemSize), hi-lo)
	}
	return a.elems[lo:hi:hi]
}

// StoreSeq charges a sequential simulated write of elements [lo, hi) and
// returns the backing subslice for the caller to fill — the bulk
// counterpart of hi-lo Store calls.
func (a *Array[T]) StoreSeq(c *Ctx, lo, hi int) []T {
	if hi > lo {
		c.acc.StoreRange(a.Addr(lo), uint32(a.elemSize), hi-lo)
	}
	return a.elems[lo:hi:hi]
}

// FillSeq stores v into every element of [lo, hi) through the simulated
// memory system (a charged, bulk variant of Fill).
func (a *Array[T]) FillSeq(c *Ctx, lo, hi int, v T) {
	dst := a.StoreSeq(c, lo, hi)
	for i := range dst {
		dst[i] = v
	}
}

// ReduceSeq folds f over elements [lo, hi) read sequentially through the
// simulated memory system, starting from init. Accumulation order is
// ascending index, so results are bit-identical to an element-at-a-time
// loop.
func (a *Array[T]) ReduceSeq(c *Ctx, lo, hi int, init float64, f func(acc float64, v T) float64) float64 {
	acc := init
	for _, v := range a.LoadSeq(c, lo, hi) {
		acc = f(acc, v)
	}
	return acc
}

// Raw returns the backing slice for un-simulated access: initialization,
// verification, and result extraction. Kernels being measured must go
// through Load/Store instead.
func (a *Array[T]) Raw() []T { return a.elems }

// Fill sets every element to v without simulation cost (initialization).
func (a *Array[T]) Fill(v T) {
	for i := range a.elems {
		a.elems[i] = v
	}
}
