package atmem

import (
	"testing"

	"atmem/internal/faultinject"
	"atmem/internal/governor"
	"atmem/internal/memsim"
)

// govTestbed is the NVM-DRAM testbed with the fast tier shrunk so small
// arrays can cross the governor's watermarks.
func govTestbed(fastCap uint64) Testbed {
	p := memsim.NVMDRAMParams()
	if fastCap > 0 {
		p.Tiers[memsim.TierFast].CapacityBytes = fastCap
	}
	return CustomTestbed(p)
}

// scanPhase runs one phase that sweeps the given arrays with a strided
// permutation (the fault tests' idiom: strides defeat the simulator's
// sequential fast path and keep the profiler fed with miss samples), so
// every chunk becomes unambiguously hot and the analyzer's selection is
// stable across epochs.
func scanPhase(rt *Runtime, name string, arrays ...*Array[uint64]) {
	rt.RunPhase(name, func(c *Ctx) {
		for _, a := range arrays {
			lo, hi := c.Range(a.Len())
			for rep := 0; rep < 4; rep++ {
				for i := lo; i < hi; i++ {
					a.Load(c, (i*7919)%a.Len())
				}
			}
		}
	})
}

// epochOn runs one governed epoch whose body scans the given arrays.
func epochOn(t *testing.T, rt *Runtime, name string, arrays ...*Array[uint64]) EpochReport {
	t.Helper()
	rep, err := rt.RunEpoch(name, func() { scanPhase(rt, name, arrays...) })
	if err != nil {
		t.Fatalf("epoch %s: %v", name, err)
	}
	if !rep.Optimized {
		t.Fatalf("epoch %s attributed no samples", name)
	}
	return rep
}

func fillDeterministic(a *Array[uint64], salt uint64) {
	for i := range a.Raw() {
		a.Raw()[i] = uint64(i)*2654435761 + salt
	}
}

func assertDataIntact(t *testing.T, label string, a *Array[uint64], salt uint64) {
	t.Helper()
	for i, v := range a.Raw() {
		if want := uint64(i)*2654435761 + salt; v != want {
			t.Fatalf("%s: element %d corrupted: %#x vs %#x", label, i, v, want)
		}
	}
}

// TestGovernedSecondEpochEmptyDelta pins the redundant re-migration fix:
// an epoch whose samples reproduce the previous plan must produce an
// empty delta and move zero bytes, because everything it selects is
// already fast-resident.
func TestGovernedSecondEpochEmptyDelta(t *testing.T) {
	rt, err := NewRuntime(NVMDRAM(), Options{
		Policy:       PolicyATMem,
		SamplePeriod: 64,
		Governor:     GovernorOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := NewArray[uint64](rt, "hot", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewArray[uint64](rt, "cold", 256<<10); err != nil {
		t.Fatal(err)
	}

	first := epochOn(t, rt, "e1", hot).Migration
	if first.BytesMoved == 0 || first.PromotedBytes == 0 {
		t.Fatalf("first epoch promoted nothing: %+v", first)
	}
	if first.DeltaEmpty {
		t.Fatalf("first epoch reported an empty delta: %+v", first)
	}
	resident := rt.ResidentBytes()
	if resident == 0 {
		t.Fatal("no residency tracked after first epoch")
	}

	second := epochOn(t, rt, "e2", hot).Migration
	if !second.DeltaEmpty {
		t.Errorf("second epoch with unchanged samples not empty: %+v", second)
	}
	if second.BytesMoved != 0 || second.PromotedBytes != 0 || second.DemotedBytes != 0 {
		t.Errorf("second epoch re-migrated: moved %d (+%d/-%d)",
			second.BytesMoved, second.PromotedBytes, second.DemotedBytes)
	}
	if got := rt.ResidentBytes(); got != resident {
		t.Errorf("residency drifted across a converged epoch: %d vs %d", got, resident)
	}
	if err := rt.System().CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestGovernedFreeDropsResidency is the regression test for Free on a
// governed runtime: freeing an object must forget its residency and
// hysteresis state, so an allocation reusing the address range starts
// cold and is promoted on its own merit.
func TestGovernedFreeDropsResidency(t *testing.T) {
	rt, err := NewRuntime(NVMDRAM(), Options{
		Policy:       PolicyATMem,
		SamplePeriod: 64,
		Governor:     GovernorOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := NewArray[uint64](rt, "hot", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	epochOn(t, rt, "warm", hot)
	if rt.ResidentBytes() == 0 {
		t.Fatal("no residency tracked after warm epoch")
	}

	if err := hot.Free(); err != nil {
		t.Fatal(err)
	}
	if got := rt.ResidentBytes(); got != 0 {
		t.Fatalf("freed object left %d resident bytes behind", got)
	}

	// A new allocation (typically reusing the freed range) must not
	// inherit the old residency: its first hot epoch promotes it.
	next, err := NewArray[uint64](rt, "next", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	rep := epochOn(t, rt, "reuse", next).Migration
	if rep.PromotedBytes == 0 {
		t.Errorf("stale residency suppressed the promotion of a fresh object: %+v", rep)
	}
	if rep.DeltaEmpty {
		t.Errorf("fresh object's first epoch reported an empty delta: %+v", rep)
	}
	if err := rt.System().CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestGovernedPressureDemotionFundsShift drives a hot-set shift on a
// shrunken fast tier: promoting the new hot set would blow through the
// high watermark long before hysteresis expires, so the watermarks must
// demote the old set's cold candidates first, draining occupancy to the
// low watermark, and the runtime must converge to empty deltas within
// the hysteresis window after the shift.
func TestGovernedPressureDemotionFundsShift(t *testing.T) {
	const (
		fastCap = 8 << 20
		reserve = 2 << 20
		capEff  = fastCap - reserve
		n       = (4 << 20) / 8 // 4 MiB of uint64 per array
	)
	rt, err := NewRuntime(govTestbed(fastCap), Options{
		Policy:          PolicyATMem,
		SamplePeriod:    64,
		CapacityReserve: reserve,
		Governor: GovernorOptions{
			Enabled:           true,
			HighWatermark:     0.90,
			LowWatermark:      0.75,
			DemoteAfterEpochs: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArray[uint64](rt, "a", n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewArray[uint64](rt, "b", n)
	if err != nil {
		t.Fatal(err)
	}
	fillDeterministic(a, 1)
	fillDeterministic(b, 2)

	// Phase 1: a is the hot set and becomes fully resident.
	warm := epochOn(t, rt, "warm-a", a).Migration
	if warm.PromotedBytes != a.Object().Size() {
		t.Fatalf("warm epoch promoted %d of %d bytes", warm.PromotedBytes, a.Object().Size())
	}
	epochOn(t, rt, "steady-a", a)

	// Phase 2: the hot set shifts to b. a's chunks are cold for only one
	// epoch — far from the hysteresis window — so only pressure demotion
	// can fund b's promotion.
	shift := epochOn(t, rt, "shift-b", b).Migration
	if shift.PressureDemotedBytes == 0 {
		t.Fatalf("hot-set shift triggered no pressure demotion: %+v", shift)
	}
	if shift.PromotedBytes != b.Object().Size() {
		t.Errorf("shift epoch promoted %d of %d bytes", shift.PromotedBytes, b.Object().Size())
	}
	if shift.RegionsDemoted == 0 || shift.DemotedBytes != shift.PressureDemotedBytes {
		t.Errorf("demotion accounting: %d regions, %d bytes, %d pressure",
			shift.RegionsDemoted, shift.DemotedBytes, shift.PressureDemotedBytes)
	}
	// Pressure drains to the low watermark and stops there: committed
	// occupancy lands at LowWatermark * effective capacity (the demotion
	// target is exact; chunk granularity divides it evenly here).
	if used := rt.System().Used(memsim.TierFast); used > uint64(0.75*capEff) {
		t.Errorf("post-shift occupancy %d above low watermark %d", used, uint64(0.75*capEff))
	}

	// Phase 3: b stays hot. The rest of a drains via hysteresis
	// (DemoteAfterEpochs=3), and the loop converges to empty deltas
	// within the window — no thrash.
	var hysteresisDemoted uint64
	for e := 0; e < 3; e++ {
		rep := epochOn(t, rt, "steady-b", b).Migration
		if rep.PromotedBytes != 0 {
			t.Errorf("steady epoch %d re-promoted %d bytes", e, rep.PromotedBytes)
		}
		if rep.PressureDemotedBytes != 0 {
			t.Errorf("steady epoch %d used pressure demotion: %+v", e, rep)
		}
		hysteresisDemoted += rep.DemotedBytes
	}
	if leftover := a.Object().FastBytes(); leftover != 0 {
		t.Errorf("a still holds %d fast bytes after hysteresis window", leftover)
	}
	if hysteresisDemoted == 0 {
		t.Error("hysteresis never demoted a's leftover resident chunks")
	}
	if got := rt.ResidentBytes(); got != b.Object().Size() {
		t.Errorf("resident bytes %d, want exactly b's %d", got, b.Object().Size())
	}
	for e := 0; e < 5; e++ {
		rep := epochOn(t, rt, "converged-b", b).Migration
		if !rep.DeltaEmpty || rep.BytesMoved != 0 {
			t.Fatalf("converged epoch %d moved data again: %+v", e, rep)
		}
	}

	assertDataIntact(t, "a", a, 1)
	assertDataIntact(t, "b", b, 2)
	if err := rt.System().CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestGovernedBudgetFullyReservedDegrades pins the shrinking-budget
// contract: a reserve that swallows the whole fast tier leaves a zero
// placement budget, and the governed Optimize must treat that as a clean
// no-op epoch — no ErrNoCapacity, no breaker damage — rather than
// falling through to the analyzer (which reads budget 0 as unlimited).
func TestGovernedBudgetFullyReservedDegrades(t *testing.T) {
	rt, err := NewRuntime(NVMDRAM(), Options{
		Policy:       PolicyATMem,
		SamplePeriod: 64,
		Governor:     GovernorOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := NewArray[uint64](rt, "hot", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetCapacityReserve(rt.System().P.Tiers[memsim.TierFast].CapacityBytes + 1)

	rep := epochOn(t, rt, "starved", hot).Migration
	if rep.BytesMoved != 0 || rep.SelectedBytes != 0 {
		t.Fatalf("fully-reserved tier still placed data: %+v", rep)
	}
	if rep.Breaker != governor.StateClosed.String() {
		t.Errorf("clean no-op epoch damaged the breaker: %s", rep.Breaker)
	}
	if rt.ResidentBytes() != 0 {
		t.Errorf("resident bytes %d on a starved tier", rt.ResidentBytes())
	}

	// Restoring headroom resumes placement on the next epoch.
	rt.SetCapacityReserve(2 << 20)
	if rep := epochOn(t, rt, "restored", hot).Migration; rep.PromotedBytes == 0 {
		t.Errorf("epoch after restoring the reserve promoted nothing: %+v", rep)
	}
}

// TestGovernedBreakerFaultCycle is the robustness acceptance cycle: a
// fault schedule that fails every staging reservation degrades every
// migration into a full skip, the breaker opens and skips epochs (which
// preserves the remaining fault budget), half-open probes burn through
// the rest, and once the faults are exhausted a probe succeeds, the
// breaker closes, and the loop converges — with phases running and data
// bit-identical throughout.
func TestGovernedBreakerFaultCycle(t *testing.T) {
	rt, err := NewRuntime(NVMDRAM(), Options{
		Policy:       PolicyATMem,
		SamplePeriod: 64,
		FaultSchedule: &faultinject.Schedule{Faults: []faultinject.Fault{
			{Op: faultinject.OpReserve, Prob: 1, MaxFires: 25, Err: memsim.ErrNoCapacity},
		}},
		Governor: GovernorOptions{
			Enabled:          true,
			BreakerThreshold: 2,
			BreakerCooldown:  2,
			MaxCooldown:      4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := NewArray[uint64](rt, "hot", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	fillDeterministic(hot, 3)

	var skipped, emptyTail int
	for e := 1; e <= 40; e++ {
		rep := epochOn(t, rt, "cycle", hot).Migration
		if rep.BreakerSkipped {
			skipped++
		}
		if rep.Breaker == governor.StateClosed.String() && rep.DeltaEmpty {
			emptyTail++
			if emptyTail >= 3 {
				break
			}
		} else {
			emptyTail = 0
		}
	}

	if emptyTail < 3 {
		t.Fatalf("loop never converged: state %s after %d epochs, transitions %+v",
			rt.BreakerState(), rt.Epoch(), rt.BreakerTransitions())
	}
	if skipped == 0 {
		t.Error("open breaker never skipped an epoch")
	}
	var opened, closedAfterProbe bool
	for _, tr := range rt.BreakerTransitions() {
		if tr.From == governor.StateClosed && tr.To == governor.StateOpen {
			opened = true
		}
		if tr.From == governor.StateHalfOpen && tr.To == governor.StateClosed {
			closedAfterProbe = true
		}
	}
	if !opened || !closedAfterProbe {
		t.Errorf("transition log misses open/close: %+v", rt.BreakerTransitions())
	}
	if got := rt.BreakerState(); got != governor.StateClosed {
		t.Errorf("final breaker state %s", got)
	}
	if hot.Object().FastBytes() != hot.Object().Size() {
		t.Errorf("hot set not fully promoted after recovery: %d of %d fast",
			hot.Object().FastBytes(), hot.Object().Size())
	}

	assertDataIntact(t, "hot", hot, 3)
	for tier := memsim.Tier(0); tier < memsim.NumTiers; tier++ {
		if res := rt.System().Reserved(tier); res != 0 {
			t.Errorf("leaked %d reserved bytes on %s", res, tier)
		}
	}
	if err := rt.System().CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestGovernedEpochLoopConcurrentPhases runs the epoch loop with
// multi-threaded phase kernels and a mid-loop hot-set shift; it exists
// to put the governor's bookkeeping under the race detector next to the
// simulator's concurrent accessors.
func TestGovernedEpochLoopConcurrentPhases(t *testing.T) {
	rt, err := NewRuntime(govTestbed(8<<20), Options{
		Policy:          PolicyATMem,
		SamplePeriod:    64,
		CapacityReserve: 2 << 20,
		Governor:        GovernorOptions{Enabled: true, DemoteAfterEpochs: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArray[uint64](rt, "a", (3<<20)/8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewArray[uint64](rt, "b", (3<<20)/8)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 8; e++ {
		hot := a
		if e >= 4 {
			hot = b
		}
		rep, err := rt.RunEpoch("mix", func() {
			scanPhase(rt, "load", hot)
			scanPhase(rt, "store", hot)
		})
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if len(rep.Phases) != 2 {
			t.Fatalf("epoch %d recorded %d phases", e, len(rep.Phases))
		}
	}
	if err := rt.System().CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestRunEpochRequiresGovernor and the zero-sample epoch contract.
func TestRunEpochEdgeCases(t *testing.T) {
	plain, err := NewRuntime(NVMDRAM(), Options{Policy: PolicyATMem})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.RunEpoch("nope", func() {}); err == nil {
		t.Error("RunEpoch on an ungoverned runtime did not error")
	}

	rt, err := NewRuntime(NVMDRAM(), Options{
		Policy:   PolicyATMem,
		Governor: GovernorOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewArray[uint64](rt, "idle", 4<<10); err != nil {
		t.Fatal(err)
	}
	rep, err := rt.RunEpoch("idle", func() {})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Optimized || rep.Samples != 0 {
		t.Errorf("idle epoch optimized: %+v", rep)
	}
	if rep.Migration.BytesMoved != 0 {
		t.Errorf("idle epoch moved %d bytes", rep.Migration.BytesMoved)
	}
	if got := rt.BreakerState(); got != governor.StateClosed {
		t.Errorf("idle epoch advanced the breaker: %s", got)
	}
	if rt.Epoch() != 1 {
		t.Errorf("epoch counter %d", rt.Epoch())
	}
}
