package atmem

// This file is the runtime half of the epoch-adaptive placement
// governor (see internal/governor for the control mechanisms and
// internal/core's Residency for delta planning). A governed runtime
// re-optimizes repeatedly as the application's hot set drifts — the
// adaptive interval loop of the paper's §5 — and must do so without
// re-migrating data that is already placed, without erroring when the
// budget shrinks, and without hammering a failing migration path.

import (
	"context"
	"fmt"
	"time"

	"atmem/internal/core"
	"atmem/internal/governor"
	"atmem/internal/memsim"
	"atmem/internal/migrate"
	"atmem/internal/telemetry"
)

// govInfo captures one governed Optimize for reporting.
type govInfo struct {
	epoch          int
	decision       governor.Decision
	state          governor.State // breaker state after the epoch
	skipped        bool           // breaker-open epoch, no migration ran
	emptyDelta     bool           // nothing to move before any probe shrink
	promotedBytes  uint64
	demotedBytes   uint64
	regionsDemoted int
	pressureBytes  uint64 // demotions scheduled by the watermarks
	residentBytes  uint64
}

// EpochReport is the outcome of one Runtime.RunEpoch: the phases the
// body ran, the samples the epoch attributed, and the governed
// migration report.
type EpochReport struct {
	// Epoch is the 1-based runtime epoch number.
	Epoch int
	// Samples is how many profiler samples the epoch attributed to
	// registered objects.
	Samples int
	// Optimized reports whether the epoch ran the governed Optimize (a
	// zero-sample epoch carries no placement signal and keeps the
	// current placement without consulting the breaker).
	Optimized bool
	// Migration is the governed migration report (zero when Optimized
	// is false).
	Migration MigrationReport
	// Phases are the phases the epoch body ran, in order.
	Phases []PhaseResult
	// Overlapped reports whether a background placement ran concurrently
	// with this epoch's phases (RunEpochAsync only).
	Overlapped bool
	// PlacedFromEpoch is the epoch whose samples the overlapped
	// placement used (0 when no background placement ran — the pipeline's
	// first epoch has nothing pending).
	PlacedFromEpoch int
	// OverlapSeconds is how much of the background migration's modelled
	// time was hidden under the epoch's phases.
	OverlapSeconds float64
	// StolenSeconds is the share of the overlapped time charged back to
	// the simulated clock as bandwidth stolen from the running kernels.
	StolenSeconds float64
	// Replayed marks an epoch that executed a compiled plan's recorded
	// schedule instead of the profile→analyze→migrate loop (see
	// Runtime.ArmPlan).
	Replayed bool
}

// Epoch returns the current epoch count (epochs started so far).
func (r *Runtime) Epoch() int { return r.epoch }

// BreakerState returns the circuit breaker's current state. It returns
// the zero state on an ungoverned runtime.
func (r *Runtime) BreakerState() governor.State {
	if r.breaker == nil {
		return governor.StateClosed
	}
	return r.breaker.State()
}

// BreakerTransitions returns every breaker state change so far, in
// order (nil on an ungoverned runtime).
func (r *Runtime) BreakerTransitions() []governor.Transition {
	if r.breaker == nil {
		return nil
	}
	return r.breaker.Transitions()
}

// ResidentBytes returns the bytes the governor currently tracks as
// fast-resident (zero on an ungoverned runtime).
func (r *Runtime) ResidentBytes() uint64 {
	if r.resid == nil {
		return 0
	}
	return r.resid.ResidentBytes()
}

// RunEpoch drives one adaptive interval: reset the per-epoch heat,
// profile the body (which runs its phases via RunPhase), then run the
// governed Optimize on the epoch's samples. A body that produced no
// attributable samples keeps the current placement — an idle interval
// carries no signal, so neither the hysteresis counters nor the breaker
// advance. Requires Options.Governor.Enabled.
func (r *Runtime) RunEpoch(name string, body func()) (EpochReport, error) {
	return r.RunEpochCtx(context.Background(), name, body)
}

// RunEpochCtx is RunEpoch with a context: cancellation mid-plan makes
// the migration engine roll back the in-flight region and skip the rest
// of the schedule (the regions report OutcomeSkipped), leaving placement
// consistent.
func (r *Runtime) RunEpochCtx(ctx context.Context, name string, body func()) (EpochReport, error) {
	if r.resid == nil {
		return EpochReport{}, fmt.Errorf("atmem: RunEpoch requires Options.Governor.Enabled")
	}
	if r.armedPlan != nil {
		// A compiled plan is armed: replay its recorded schedule instead
		// of profiling and analyzing (see replay.go).
		return r.runEpochReplay(ctx, name, body)
	}
	r.epoch++
	r.rec.Begin(0, "epoch", name, telemetry.Args{"epoch": r.epoch})
	rep := EpochReport{Epoch: r.epoch}
	phaseStart := len(r.phases)
	// The epoch's scorecard charges exactly the scrub time this epoch's
	// health passes add (the epoch-start pass below and the epoch-end
	// evacuations), so diff the cumulative charge across the epoch.
	scrubStart := r.scrubChargedNS

	// Epoch-start health pass: fire the fault schedule's epoch-driven
	// orders and scrub the fast-tier residency, so injected corruption is
	// detected and repaired before any kernel consumes it (see health.go).
	// On a broker tenant the pass may migrate (emergency demotions), so
	// it takes the cross-tenant placement lock.
	r.lockPlacement()
	herr := r.beginEpochHealth(0)
	r.unlockPlacement()
	if herr != nil {
		r.rec.End(0, "epoch", name, telemetry.Args{"epoch": r.epoch, "error": herr.Error()})
		return rep, herr
	}

	// Each epoch ranks on its own interval's heat: stale samples from
	// previous intervals would anchor the old hot set and mask drift.
	r.reg.ResetSamples()
	r.ProfilingStart()
	body()
	rep.Samples = r.ProfilingStop()
	rep.Phases = append(rep.Phases, r.phases[phaseStart:]...)

	// While a recorder is armed, every epoch must land in the plan —
	// including ones that never reach the commit point (zero samples,
	// open breaker, empty budget) — so the replayed epoch numbering stays
	// aligned with the bodies the caller runs.
	recBase := -1
	if r.planRec != nil {
		recBase = r.planRec.Epochs()
	}
	var err error
	if rep.Samples > 0 {
		rep.Optimized = true
		rep.Migration, err = r.optimizeGoverned(ctx, r.prof.Config().Period, 0)
	}
	if r.planRec != nil && r.planRec.Epochs() == recBase {
		r.recordCommitted(nil, nil)
	}
	// Epoch-end health pass: evacuate condemned granules and re-snapshot
	// the settled fast-tier residency for the next epoch's scrub.
	if err == nil {
		r.lockPlacement()
		err = r.endEpochHealth(0)
		r.unlockPlacement()
	}
	r.finishEpochScorecard(&rep, scrubStart)
	r.rec.End(0, "epoch", name, telemetry.Args{
		"epoch":     r.epoch,
		"samples":   rep.Samples,
		"optimized": rep.Optimized,
	})
	return rep, err
}

// optimizeGoverned is Optimize for a governed runtime: one breaker
// decision, a residency delta against the fresh plan, watermark-driven
// pressure demotions, and a mixed-direction migration schedule with
// demotions first. The sampling period is a parameter (not read from
// the profiler) so the async pipeline can analyze a previous interval's
// samples while the profiler is already reconfigured for the next; tid
// selects the telemetry track (the placement track when running on the
// background service goroutine).
func (r *Runtime) optimizeGoverned(ctx context.Context, period uint64, tid int) (MigrationReport, error) {
	if !r.profiled {
		return MigrationReport{}, fmt.Errorf("atmem: Optimize before any profiled samples were attributed")
	}
	// Serialize against co-tenants on a shared system: the staging
	// reservations and the global reserved==0 invariant assume one
	// migration in flight at a time. No-op on a solo runtime.
	r.lockPlacement()
	defer r.unlockPlacement()
	optStart := r.simNS.Load()
	r.rec.Begin(tid, "optimize", "optimize", nil)
	var analyzeNS uint64
	defer func() {
		r.logNewFaults(tid)
		r.logBreakerTransitions(tid)
		r.logHealthTransitions(tid)
		r.rec.End(tid, "optimize", "optimize", r.optimizeSpanArgs())
		r.recordOptimizeMetrics(tid, analyzeNS)
	}()

	gi := &govInfo{decision: r.breaker.Decide()}
	gi.epoch = r.breaker.Epoch()
	r.gov = gi
	finish := func() MigrationReport {
		gi.state = r.breaker.State()
		gi.residentBytes = r.resid.ResidentBytes()
		// Mirror the breaker state atomically for /healthz, which reads
		// from the debug listener's goroutine mid-run.
		r.breakerOpenA.Store(gi.state != governor.StateClosed)
		return r.migrationReport()
	}
	emptyStats := func() {
		r.plan = &core.Plan{TotalBytes: r.reg.TotalBytes()}
		st := migrate.Stats{Engine: r.engine.Name()}
		r.migStats = &st
	}

	if gi.decision == governor.DecisionSkip {
		// Open breaker: no analysis, no migration, hysteresis counters
		// frozen. The epoch still ran its phases on the degraded
		// placement; the cooldown was counted by Decide.
		gi.skipped = true
		emptyStats()
		return finish(), nil
	}

	// The placement budget is an exact ledger identity: free capacity
	// beyond the reserve plus what registered objects already hold on
	// the fast tier. Re-selecting an already-resident chunk costs
	// nothing, so identical samples reproduce the identical plan across
	// epochs — the invariant that makes steady-state deltas empty.
	free := r.sys.FreeCapacity(memsim.TierFast)
	var effFree uint64
	if free > r.opts.CapacityReserve {
		effFree = free - r.opts.CapacityReserve
	}
	budget := effFree + r.registeredFastBytes()
	if r.tenant != nil {
		// Broker tenancy: the granted share — already debited by this
		// tenant's own quarantined bytes, so one tenant's fault storm
		// shrinks only its own budget — caps the placement budget.
		// Physical availability (what we hold plus the global headroom)
		// still bounds it from above.
		if share := r.tenant.Budget(); share < budget {
			budget = share
		}
	}
	if budget == 0 {
		if r.tenant != nil {
			// A tenant with no budget still runs the analyzer with a
			// 1-byte budget (0 would mean unlimited): for a shed or
			// fully-debited tenant the empty selection lets the pressure
			// demotions below drain its residency, and for a fresh tenant
			// the clipped plan's MarginalDensity is the "I am hungry"
			// signal the arbiter needs before it can grant a first share.
			budget = 1
		} else {
			// Nothing resident and no headroom: there is no placement
			// budget at all (core treats budget 0 as unlimited, so this
			// cannot fall through to the analyzer). A clean no-op epoch.
			emptyStats()
			r.breaker.Observe(false)
			return finish(), nil
		}
	}
	analyzeStart := time.Now()
	plan, err := r.policy.Rank(core.PolicyProfile{
		Registry: r.reg,
		Period:   period,
		Epoch:    gi.epoch,
	}, budget, r.stageObserver(tid))
	analyzeNS = uint64(time.Since(analyzeStart))
	if err != nil {
		return MigrationReport{}, err
	}
	if r.opts.BandwidthAware && !r.sys.P.SharedChannels {
		trimPlanForBandwidth(plan, &r.sys.P)
	}
	r.plan = plan

	// Delta against residency: promotions of newly-hot ranges,
	// demotions of ranges cold for the whole hysteresis window, plus
	// the not-yet-expired cold chunks as pressure candidates.
	delta, cands := r.resid.Advance(plan, r.govCfg.DemoteAfterEpochs)

	// Pressure watermarks: if committing the delta would push occupancy
	// over the high watermark, demote candidates coldest-first until
	// the projection drains to the low watermark. This is what lets a
	// hot-set shift or a budget cut proceed before hysteresis expires.
	capEff := r.sys.P.Tiers[memsim.TierFast].CapacityBytes
	// Quarantined pages are capacity the tier no longer has: the
	// watermarks must drain occupancy against the effective size, or a
	// shrunken tier would never look pressured.
	if q := r.sys.Quarantined(); capEff > q {
		capEff -= q
	} else {
		capEff = 0
	}
	committed := r.sys.Used(memsim.TierFast)
	if r.tenant != nil {
		// Per-tenant watermarks: this tenant's fast footprint pressured
		// against its own (quarantine-debited) share, so a share cut or
		// its own fault storm drains this tenant's residency without
		// touching anyone else's.
		capEff = r.tenant.Budget()
		committed = r.sys.TenantUsage(r.tenant.ID()).FastBytes
	}
	if capEff > r.opts.CapacityReserve {
		capEff -= r.opts.CapacityReserve
	} else {
		capEff = 0
	}
	projected := committed + delta.PromoteBytes
	if projected > delta.DemoteBytes {
		projected -= delta.DemoteBytes
	} else {
		projected = 0
	}
	target := governor.DemotionTarget(projected, capEff,
		r.govCfg.HighWatermark, r.govCfg.LowWatermark)
	if capEff == 0 {
		// DemotionTarget treats zero capacity as "no signal"; here it
		// means the budget is gone entirely — drain everything.
		target = projected
	}
	sched := migrate.Schedule{}
	for _, rg := range delta.Demotions {
		sched.Demotions = append(sched.Demotions, migrate.Region{Base: rg.Base, Size: rg.Size})
	}
	for _, c := range cands {
		if gi.pressureBytes >= target {
			break
		}
		sched.Demotions = append(sched.Demotions, migrate.Region{Base: c.Range.Base, Size: c.Range.Size})
		gi.pressureBytes += c.Range.Size
	}
	for _, rg := range delta.Promotions {
		sched.Promotions = append(sched.Promotions, migrate.Region{Base: rg.Base, Size: rg.Size})
	}
	// Health veto: never promote onto quarantined or distrusted granules.
	sched.Promotions = r.filterPromotions(tid, sched.Promotions)
	gi.emptyDelta = sched.Empty()

	if gi.decision == governor.DecisionProbe && !sched.Empty() {
		// Half-open: probe with the single smallest region (a
		// promotion if there is one — it exercises the fast tier the
		// failures came from) instead of the whole schedule.
		if len(sched.Promotions) > 0 {
			sched = migrate.Schedule{Promotions: []migrate.Region{smallestRegion(sched.Promotions)}}
		} else {
			sched = migrate.Schedule{Demotions: []migrate.Region{smallestRegion(sched.Demotions)}}
		}
	}

	pre := r.objectChecksums()
	var sink migrate.EventSink
	if r.rec.Enabled() {
		sink = func(ev migrate.Event) { r.emitMigrationEvent(tid, optStart, ev) }
	}
	res, err := migrate.RunSchedule(ctx, r.engine, r.sys, sched, sink)
	st := res.Merged
	r.migStats = &st
	if !r.asyncActive.Load() {
		// Stop-the-world placement: the application waits out the whole
		// migration. The overlapped pipeline instead reconciles the
		// clock at the epoch join, charging only the non-hidden share.
		r.simNS.Add(uint64(st.Seconds * 1e9))
	}
	if err != nil {
		// Unrecoverable (failed rollback): degrade the breaker and
		// surface the error.
		r.breaker.Observe(true)
		return finish(), fmt.Errorf("atmem: migration: %w", err)
	}

	// Invalidate stale TLB/cache entries for exactly the committed
	// slices, in either direction (via the shootdown log when accessors
	// may be running concurrently).
	r.invalidateMoved(st.Moved)
	// Residency follows commits, never plans: only ranges whose remap
	// committed change state, so a rolled-back region keeps both its
	// placement and its residency.
	for _, rg := range res.Demotions.Moved {
		r.markMovedRegion(rg, false)
	}
	for _, rg := range res.Promotions.Moved {
		r.markMovedRegion(rg, true)
	}
	gi.promotedBytes = res.Promotions.BytesMoved
	gi.demotedBytes = res.Demotions.BytesMoved
	gi.regionsDemoted = len(res.Demotions.Moved)
	// Promotion outcomes are health observations: committed promotions
	// vouch for their target granules, skipped ones indict them.
	r.observeMigrationHealth(res)
	// Plan recording captures exactly what committed this epoch — the
	// decisions a replay must reproduce (see replay.go).
	r.recordCommitted(res.Promotions.Moved, res.Demotions.Moved)

	// A cancelled plan skips regions deliberately; that is the caller's
	// choice, not a failing migration path, so it must not trip the
	// breaker.
	r.breaker.Observe(st.RegionsSkipped > 0 && ctx.Err() == nil)
	if err := r.verifyMigrationInvariants(pre); err != nil {
		return finish(), fmt.Errorf("atmem: post-migration invariant violated: %w", err)
	}
	return finish(), nil
}

// registeredFastBytes sums the fast-tier bytes of every registered
// object, from the simulator's ground-truth page table.
func (r *Runtime) registeredFastBytes() uint64 {
	var n uint64
	for _, do := range r.reg.Objects() {
		n += r.sys.BytesOnTier(do.Base, do.Size)[memsim.TierFast]
	}
	return n
}

// markMovedRegion resolves the object containing a committed migration
// range and updates its residency. Regions are built from per-object
// chunk ranges and objects are page-aligned, so a range never spans
// objects.
func (r *Runtime) markMovedRegion(rg migrate.Region, fast bool) {
	if o, _, ok := r.reg.Find(rg.Base); ok {
		r.resid.MarkMoved(o, rg.Base, rg.Size, fast)
	}
}

func smallestRegion(regions []migrate.Region) migrate.Region {
	best := regions[0]
	for _, rg := range regions[1:] {
		if rg.Size < best.Size {
			best = rg
		}
	}
	return best
}
