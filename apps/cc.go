package apps

import (
	"fmt"
	"sort"
	"sync/atomic"

	"atmem"
	"atmem/graph"
)

// CC computes connected components with frontier-based min-label
// propagation over the symmetrized graph: active vertices push their
// label to their neighbours with an atomic minimum; a neighbour whose
// label improves joins the next frontier. Atomic minima never lose
// updates, so the labels converge to the exact minimum vertex id of each
// component regardless of thread interleaving.
//
// One RunIteration runs the propagation to its fixed point (bounded by
// MaxRounds as a safety net).
type CC struct {
	// MaxRounds bounds propagation; 0 means 1024.
	MaxRounds int

	g        *graph.Graph // original, for validation
	sym      csrData      // symmetrized CSR
	symG     *graph.Graph
	label    *atmem.Array[uint32]
	stamp    *atmem.Array[int32]
	frontier *atmem.Array[uint32]
	next     *atmem.Array[uint32]
}

// Name implements Kernel.
func (k *CC) Name() string { return "cc" }

// Setup implements Kernel.
func (k *CC) Setup(rt *atmem.Runtime, dataset string) error {
	g, err := graph.Load(dataset)
	if err != nil {
		return err
	}
	sym, err := graph.LoadSymmetric(dataset)
	if err != nil {
		return err
	}
	k.g = g
	k.symG = sym
	if k.sym, err = registerCSR(rt, sym, "cc", false); err != nil {
		return err
	}
	n := g.NumVertices()
	if k.label, err = atmem.NewArray[uint32](rt, "cc.label", n); err != nil {
		return err
	}
	if k.stamp, err = atmem.NewArray[int32](rt, "cc.stamp", n); err != nil {
		return err
	}
	if k.frontier, err = atmem.NewArray[uint32](rt, "cc.frontier", n); err != nil {
		return err
	}
	if k.next, err = atmem.NewArray[uint32](rt, "cc.next", n); err != nil {
		return err
	}
	if k.MaxRounds == 0 {
		k.MaxRounds = 1024
	}
	return nil
}

// atomicMinUint32 lowers *p to v if v is smaller, returning whether it
// changed the value.
func atomicMinUint32(p *uint32, v uint32) bool {
	for {
		cur := atomic.LoadUint32(p)
		if cur <= v {
			return false
		}
		if atomic.CompareAndSwapUint32(p, cur, v) {
			return true
		}
	}
}

// RunIteration implements Kernel.
func (k *CC) RunIteration(rt *atmem.Runtime) IterationResult {
	var res IterationResult
	n := k.symG.NumVertices()
	labels := k.label.Raw()
	for v := range labels {
		labels[v] = uint32(v)
	}
	stamp := k.stamp.Raw()
	for i := range stamp {
		stamp[i] = -1
	}
	// Round 0: every vertex is active.
	cur := k.frontier.Raw()
	for v := range cur {
		cur[v] = uint32(v)
	}

	threads := rt.Threads()
	bufs := make([][]uint32, threads)
	for round := int32(0); len(cur) > 0 && int(round) < k.MaxRounds; round++ {
		r := round
		frontLen := len(cur)
		res.add(rt.RunPhase(fmt.Sprintf("cc.round%d", r), func(c *atmem.Ctx) {
			lo, hi := c.Range(frontLen)
			buf := bufs[c.ID][:0]
			nextBase := c.ID * (n / threads)
			work := 0.0
			front := k.frontier.LoadSeq(c, lo, hi)
			for _, fv := range front {
				v := int(fv)
				k.label.SimLoad(c, v)
				lv := atomic.LoadUint32(&labels[v])
				elo, ehi := k.sym.neighborSpan(c, v)
				for _, dst := range k.sym.edges.LoadSeq(c, int(elo), int(ehi)) {
					work++
					k.label.SimLoad(c, int(dst))
					if !atomicMinUint32(&labels[dst], lv) {
						continue
					}
					k.label.SimStore(c, int(dst))
					k.stamp.SimLoad(c, int(dst))
					old := atomic.LoadInt32(&stamp[dst])
					if old != r && atomic.CompareAndSwapInt32(&stamp[dst], old, r) {
						k.stamp.SimStore(c, int(dst))
						k.next.SimStore(c, minInt(nextBase+len(buf), n-1))
						buf = append(buf, dst)
					}
				}
			}
			bufs[c.ID] = buf
			c.Compute(work)
		}))
		merged := k.next.Raw()[:0]
		for _, buf := range bufs {
			merged = append(merged, buf...)
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		merged = dedupSorted(merged)
		copy(k.frontier.Raw(), merged)
		cur = k.frontier.Raw()[:len(merged)]
	}
	return res
}

// Labels returns the component labels (after RunIteration).
func (k *CC) Labels() []uint32 { return k.label.Raw() }

// Validate implements Kernel: every vertex must carry the minimum id of
// its undirected component.
func (k *CC) Validate() error {
	want := referenceCC(k.symG)
	got := k.label.Raw()
	for v := range want {
		if want[v] != got[v] {
			return fmt.Errorf("cc: label[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	return nil
}

// referenceCC computes min-id component labels with a serial union-find.
func referenceCC(sym *graph.Graph) []uint32 {
	n := sym.NumVertices()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Union toward the smaller id so roots are component minima.
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for v := 0; v < n; v++ {
		for _, d := range sym.Neighbors(v) {
			union(v, int(d))
		}
	}
	out := make([]uint32, n)
	for v := range out {
		out[v] = uint32(find(v))
	}
	return out
}
