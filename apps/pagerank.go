package apps

import (
	"fmt"
	"math"
	"sync/atomic"
	"unsafe"

	"atmem"
	"atmem/graph"
)

// PageRank is a push (scatter) power iteration, the formulation
// throughput-oriented SIMD graph frameworks use: each vertex scatters its
// damped contribution into its out-neighbours' next-rank slots with an
// atomic floating-point add. The next-rank array takes one random
// read-modify-write per edge — skewed toward hub vertices — which is both
// the access pattern PEBS demand-miss sampling sees and the pattern that
// suffers the most from Optane's device write granularity.
//
// Atomic adds make the result exact up to floating-point association
// order, which varies with thread interleaving; Validate therefore allows
// a small relative tolerance against the serial reference.
//
// One RunIteration performs Iterations power iterations (default 1, so
// "iteration" matches the paper's per-iteration measurement).
type PageRank struct {
	// Iterations is the number of power iterations per RunIteration.
	Iterations int
	// Damping is the damping factor d; 0 means 0.85.
	Damping float64

	g       *graph.Graph
	csr     csrData // out-edges
	rank    *atmem.Array[float64]
	nextRnk *atmem.Array[float64]

	completedIterations int
}

// Name implements Kernel.
func (p *PageRank) Name() string { return "pr" }

// Setup implements Kernel.
func (p *PageRank) Setup(rt *atmem.Runtime, dataset string) error {
	g, err := graph.Load(dataset)
	if err != nil {
		return err
	}
	p.g = g
	if p.csr, err = registerCSR(rt, g, "pr", false); err != nil {
		return err
	}
	n := g.NumVertices()
	if p.rank, err = atmem.NewArray[float64](rt, "pr.rank", n); err != nil {
		return err
	}
	if p.nextRnk, err = atmem.NewArray[float64](rt, "pr.next", n); err != nil {
		return err
	}
	p.rank.Fill(1 / float64(n))
	if p.Iterations <= 0 {
		p.Iterations = 1
	}
	if p.Damping == 0 {
		p.Damping = 0.85
	}
	return nil
}

// float64Bits aliases a float64 slice as uint64 bit patterns for atomic
// CAS access.
func float64Bits(xs []float64) []uint64 {
	if len(xs) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&xs[0])), len(xs))
}

// atomicAddFloat64 adds v to the float stored in *bits.
func atomicAddFloat64(bits *uint64, v float64) {
	for {
		cur := atomic.LoadUint64(bits)
		next := math.Float64bits(math.Float64frombits(cur) + v)
		if atomic.CompareAndSwapUint64(bits, cur, next) {
			return
		}
	}
}

// RunIteration implements Kernel.
func (p *PageRank) RunIteration(rt *atmem.Runtime) IterationResult {
	var res IterationResult
	n := p.g.NumVertices()
	base := (1 - p.Damping) / float64(n)
	for it := 0; it < p.Iterations; it++ {
		nextBits := float64Bits(p.nextRnk.Raw())
		// Phase 1: reset next ranks to the teleport base (streaming).
		res.add(rt.RunPhase("pr.reset", func(c *atmem.Ctx) {
			lo, hi := c.Range(n)
			p.nextRnk.FillSeq(c, lo, hi, base)
			c.Compute(float64(hi - lo))
		}))
		// Phase 2: scatter contributions along out-edges (sequential
		// edge scan, random atomic accumulates into next ranks).
		res.add(rt.RunPhase("pr.scatter", func(c *atmem.Ctx) {
			lo, hi := p.csr.span(c)
			work := 0.0
			for v := lo; v < hi; v++ {
				elo, ehi := p.csr.neighborSpan(c, v)
				deg := ehi - elo
				if deg == 0 {
					continue
				}
				contrib := p.Damping * p.rank.Load(c, v) / float64(deg)
				for _, dst := range p.csr.edges.LoadSeq(c, int(elo), int(ehi)) {
					p.nextRnk.SimLoad(c, int(dst))
					p.nextRnk.SimStore(c, int(dst))
					atomicAddFloat64(&nextBits[dst], contrib)
					work += 2
				}
			}
			c.Compute(work)
		}))
		p.rank, p.nextRnk = p.nextRnk, p.rank
		p.completedIterations++
	}
	return res
}

// Ranks returns the rank vector (after RunIteration).
func (p *PageRank) Ranks() []float64 { return p.rank.Raw() }

// Validate implements Kernel: ranks after k parallel iterations must match
// k serial reference iterations up to atomic-add association order.
func (p *PageRank) Validate() error {
	want := referencePageRank(p.g, p.completedIterations, p.Damping)
	got := p.rank.Raw()
	for v := range want {
		if math.Abs(want[v]-got[v]) > 1e-12+1e-6*math.Abs(want[v]) {
			return fmt.Errorf("pr: rank[%d] = %g, want %g", v, got[v], want[v])
		}
	}
	return nil
}

// referencePageRank runs iters serial push iterations.
func referencePageRank(g *graph.Graph, iters int, damping float64) []float64 {
	n := g.NumVertices()
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = base
		}
		for v := 0; v < n; v++ {
			deg := g.Degree(v)
			if deg == 0 {
				continue
			}
			contrib := damping * rank[v] / float64(deg)
			for _, dst := range g.Neighbors(v) {
				next[dst] += contrib
			}
		}
		rank, next = next, rank
	}
	return rank
}
