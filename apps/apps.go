// Package apps implements the paper's evaluation workloads — BFS, SSSP,
// PageRank (PR), betweenness centrality (BC), and connected components
// (CC), plus the SpMV generalization of §9 — against the ATMem runtime.
//
// Every kernel issues its memory accesses through atmem typed arrays, so
// the simulated heterogeneous memory system accounts every load and
// store; results are computed on real Go memory and validated against
// plain reference implementations.
//
// The kernels are pull-based (each vertex is written by exactly one
// simulated thread), which makes parallel execution deterministic in its
// results. CSR conventions: kernels that gather from neighbours (PR,
// SSSP, BFS, the forward pass of BC) traverse the transpose (in-edge)
// CSR; BC's backward pass uses the out-edge CSR; CC uses the symmetrized
// graph; SpMV uses the out-edge CSR directly as a sparse matrix.
package apps

import (
	"fmt"

	"atmem"
	"atmem/graph"
)

// IterationResult is the outcome of one kernel iteration, possibly
// composed of several barrier-separated parallel phases.
type IterationResult struct {
	// Seconds is the total simulated time of the iteration (phases
	// run back-to-back, separated by barriers).
	Seconds float64
	// Phases holds the constituent phase results.
	Phases []atmem.PhaseResult
}

func (r *IterationResult) add(p atmem.PhaseResult) {
	r.Seconds += p.Seconds()
	r.Phases = append(r.Phases, p)
}

// TLBMisses sums TLB misses over the iteration's phases.
func (r *IterationResult) TLBMisses() uint64 {
	var n uint64
	for _, p := range r.Phases {
		n += p.Stats.TLBMisses
	}
	return n
}

// LLCMisses sums LLC misses over the iteration's phases.
func (r *IterationResult) LLCMisses() uint64 {
	var n uint64
	for _, p := range r.Phases {
		n += p.Stats.LLCMisses
	}
	return n
}

// Kernel is one benchmark application.
type Kernel interface {
	// Name returns the paper's short name: "bfs", "sssp", "pr", "bc",
	// "cc", or "spmv".
	Name() string
	// Setup allocates and registers the kernel's data with the
	// runtime and initializes it (initialization is not simulated, as
	// the paper measures kernel iterations only).
	Setup(rt *atmem.Runtime, dataset string) error
	// RunIteration executes one full iteration (one traversal for
	// BFS/SSSP/BC, one sweep to convergence step for PR/CC/SpMV —
	// see each kernel) through the simulated memory system.
	RunIteration(rt *atmem.Runtime) IterationResult
	// Validate checks the computed result against a reference
	// implementation. It must be called after at least one iteration.
	Validate() error
}

// Names lists the five paper workloads in the paper's order.
func Names() []string { return []string{"bfs", "sssp", "pr", "bc", "cc"} }

// New constructs a kernel by name.
func New(name string) (Kernel, error) {
	switch name {
	case "bfs":
		return &BFS{}, nil
	case "dobfs":
		return &DOBFS{}, nil
	case "sssp":
		return &SSSP{}, nil
	case "pr":
		// One PR "iteration" is a full double-buffer period (two power
		// iterations): the rank buffers swap roles every power
		// iteration, so a shorter window would hide one buffer from
		// the profiler and alternate the measured iteration's cost.
		return &PageRank{Iterations: 2}, nil
	case "bc":
		return &BC{}, nil
	case "cc":
		return &CC{}, nil
	case "spmv":
		return &SpMV{}, nil
	}
	return nil, fmt.Errorf("apps: unknown kernel %q", name)
}

// csrData bundles the registered arrays of one CSR direction.
type csrData struct {
	offsets *atmem.Array[uint64]
	edges   *atmem.Array[uint32]
	weights *atmem.Array[float32] // nil unless registered
	// bounds partitions the vertex range so each thread owns roughly
	// equal edge work (real SIMD graph frameworks balance by edges,
	// not vertices — hub-heavy low-id partitions would otherwise
	// dominate the critical path).
	bounds []int
}

// balancedBounds computes threads+1 vertex boundaries with roughly equal
// edge counts per partition.
func balancedBounds(offsets []uint64, threads int) []int {
	n := len(offsets) - 1
	total := offsets[n]
	bounds := make([]int, threads+1)
	v := 0
	for t := 1; t < threads; t++ {
		target := total * uint64(t) / uint64(threads)
		for v < n && offsets[v] < target {
			v++
		}
		bounds[t] = v
	}
	bounds[threads] = n
	return bounds
}

// span returns this thread's vertex range.
func (d *csrData) span(c *atmem.Ctx) (lo, hi int) {
	return d.bounds[c.ID], d.bounds[c.ID+1]
}

// registerCSR registers a CSR graph's arrays under a name prefix and
// copies the graph data in (unsimulated initialization).
func registerCSR(rt *atmem.Runtime, g *graph.Graph, prefix string, withWeights bool) (csrData, error) {
	var d csrData
	var err error
	if d.offsets, err = atmem.NewArray[uint64](rt, prefix+".offsets", g.NumVertices()+1); err != nil {
		return d, err
	}
	copy(d.offsets.Raw(), g.Offsets)
	if d.edges, err = atmem.NewArray[uint32](rt, prefix+".edges", g.NumEdges()); err != nil {
		return d, err
	}
	copy(d.edges.Raw(), g.Edges)
	if withWeights {
		if g.Weights == nil {
			return d, fmt.Errorf("apps: graph %q has no weights", g.Name)
		}
		if d.weights, err = atmem.NewArray[float32](rt, prefix+".weights", g.NumEdges()); err != nil {
			return d, err
		}
		copy(d.weights.Raw(), g.Weights)
	}
	d.bounds = balancedBounds(g.Offsets, rt.Threads())
	return d, nil
}

// neighborSpan loads the CSR offsets of vertex v through the simulated
// memory system and returns the edge index range. The two adjacent
// offsets are charged as one bulk sequential pair.
func (d *csrData) neighborSpan(c *atmem.Ctx, v int) (lo, hi uint64) {
	off := d.offsets.LoadSeq(c, v, v+2)
	return off[0], off[1]
}

// orFlags reduces per-thread change flags.
func orFlags(flags []bool) bool {
	for _, f := range flags {
		if f {
			return true
		}
	}
	return false
}
