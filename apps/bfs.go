package apps

import (
	"fmt"
	"sort"
	"sync/atomic"

	"atmem"
	"atmem/graph"
)

// BFS is a level-synchronous top-down (push) breadth-first search, the
// frontier-based formulation SIMD graph frameworks use: each round, the
// vertices of the current frontier expand their out-edge segments and
// claim undiscovered neighbours with a compare-and-swap on the level
// array. Hub vertices enter the frontier early, so their edge segments
// take short demand-miss bursts every traversal — the skewed, sampling-
// visible access pattern ATMem's analyzer feeds on.
//
// Claims are atomic, so the computed levels are exact regardless of
// thread interleaving; the next frontier is sorted each round to keep
// processing order deterministic.
//
// One RunIteration is one complete traversal from the fixed root.
type BFS struct {
	// Root overrides the traversal source; 0 (the zero value) selects
	// the max-out-degree vertex, a well-connected hub.
	Root int

	g        *graph.Graph
	csr      csrData // out-edges
	lvl      *atmem.Array[int32]
	frontier *atmem.Array[uint32]
	next     *atmem.Array[uint32]
	root     int
}

// Name implements Kernel.
func (b *BFS) Name() string { return "bfs" }

// Setup implements Kernel.
func (b *BFS) Setup(rt *atmem.Runtime, dataset string) error {
	g, err := graph.Load(dataset)
	if err != nil {
		return err
	}
	b.g = g
	var err2 error
	if b.csr, err2 = registerCSR(rt, g, "bfs", false); err2 != nil {
		return err2
	}
	n := g.NumVertices()
	if b.lvl, err2 = atmem.NewArray[int32](rt, "bfs.level", n); err2 != nil {
		return err2
	}
	if b.frontier, err2 = atmem.NewArray[uint32](rt, "bfs.frontier", n); err2 != nil {
		return err2
	}
	if b.next, err2 = atmem.NewArray[uint32](rt, "bfs.next", n); err2 != nil {
		return err2
	}
	b.root = b.Root
	if b.root == 0 {
		b.root = g.MaxDegreeVertex()
	}
	return nil
}

// RunIteration implements Kernel.
func (b *BFS) RunIteration(rt *atmem.Runtime) IterationResult {
	var res IterationResult
	n := b.g.NumVertices()
	lvl := b.lvl.Raw()
	for i := range lvl {
		lvl[i] = -1
	}
	lvl[b.root] = 0
	cur := b.frontier.Raw()[:1]
	cur[0] = uint32(b.root)

	threads := rt.Threads()
	bufs := make([][]uint32, threads)
	for depth := int32(0); len(cur) > 0; depth++ {
		d := depth
		frontLen := len(cur)
		res.add(rt.RunPhase(fmt.Sprintf("bfs.round%d", d), func(c *atmem.Ctx) {
			lo, hi := c.Range(frontLen)
			buf := bufs[c.ID][:0]
			// Appends land in this thread's share of the next array.
			nextBase := c.ID * (n / threads)
			work := 0.0
			front := b.frontier.LoadSeq(c, lo, hi)
			for _, fv := range front {
				v := int(fv)
				elo, ehi := b.csr.neighborSpan(c, v)
				for _, dst := range b.csr.edges.LoadSeq(c, int(elo), int(ehi)) {
					work++
					b.lvl.SimLoad(c, int(dst))
					if atomic.LoadInt32(&lvl[dst]) != -1 {
						continue
					}
					if atomic.CompareAndSwapInt32(&lvl[dst], -1, d+1) {
						b.lvl.SimStore(c, int(dst))
						b.next.SimStore(c, minInt(nextBase+len(buf), n-1))
						buf = append(buf, dst)
					}
				}
			}
			bufs[c.ID] = buf
			c.Compute(work)
		}))
		merged := b.next.Raw()[:0]
		for _, buf := range bufs {
			merged = append(merged, buf...)
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		copy(b.frontier.Raw(), merged)
		cur = b.frontier.Raw()[:len(merged)]
	}
	return res
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Levels returns the computed level array (after RunIteration).
func (b *BFS) Levels() []int32 { return b.lvl.Raw() }

// Validate implements Kernel: the levels must match a serial reference
// BFS over the out-CSR.
func (b *BFS) Validate() error {
	want := referenceBFS(b.g, b.root)
	got := b.lvl.Raw()
	for v := range want {
		if want[v] != got[v] {
			return fmt.Errorf("bfs: level[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	return nil
}

// referenceBFS is a plain serial BFS from root over g's out-edges.
func referenceBFS(g *graph.Graph, root int) []int32 {
	n := g.NumVertices()
	lvl := make([]int32, n)
	for i := range lvl {
		lvl[i] = -1
	}
	lvl[root] = 0
	frontier := []int{root}
	for depth := int32(0); len(frontier) > 0; depth++ {
		var next []int
		for _, v := range frontier {
			for _, dst := range g.Neighbors(v) {
				if lvl[dst] == -1 {
					lvl[dst] = depth + 1
					next = append(next, int(dst))
				}
			}
		}
		frontier = next
	}
	return lvl
}
