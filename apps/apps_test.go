package apps

import (
	"testing"

	"atmem"
	"atmem/graph"
)

// runKernel sets up a kernel on the given testbed/policy, runs one
// iteration, and validates the result.
func runKernel(t *testing.T, name, dataset string, tb atmem.Testbed, policy atmem.Policy) (Kernel, IterationResult) {
	t.Helper()
	rt, err := atmem.NewRuntime(tb, atmem.Options{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	k, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Setup(rt, dataset); err != nil {
		t.Fatal(err)
	}
	res := k.RunIteration(rt)
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	return k, res
}

func TestFactoryKnowsAllKernels(t *testing.T) {
	for _, name := range append(Names(), "spmv") {
		k, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if k.Name() != name {
			t.Errorf("kernel %q reports name %q", name, k.Name())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestNamesMatchPaperOrder(t *testing.T) {
	want := []string{"bfs", "sssp", "pr", "bc", "cc"}
	got := Names()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestAllKernelsValidateOnPokec(t *testing.T) {
	for _, name := range append(Names(), "spmv") {
		name := name
		t.Run(name, func(t *testing.T) {
			_, res := runKernel(t, name, "pokec", atmem.NVMDRAM(), atmem.PolicyBaseline)
			if res.Seconds <= 0 {
				t.Error("no simulated time")
			}
			if len(res.Phases) == 0 {
				t.Error("no phases recorded")
			}
		})
	}
}

func TestKernelsValidateOnKNLTestbed(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			runKernel(t, name, "pokec", atmem.MCDRAMDRAM(), atmem.PolicyPreferFast)
		})
	}
}

func TestKernelsValidateAfterOptimize(t *testing.T) {
	// The critical integrity property: migration must not change any
	// kernel's results.
	for _, name := range append(Names(), "spmv") {
		name := name
		t.Run(name, func(t *testing.T) {
			rt, err := atmem.NewRuntime(atmem.NVMDRAM(), atmem.Options{Policy: atmem.PolicyATMem})
			if err != nil {
				t.Fatal(err)
			}
			k, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := k.Setup(rt, "pokec"); err != nil {
				t.Fatal(err)
			}
			rt.ProfilingStart()
			k.RunIteration(rt)
			if n := rt.ProfilingStop(); n == 0 {
				t.Fatal("no profiler samples")
			}
			rep, err := rt.Optimize()
			if err != nil {
				t.Fatal(err)
			}
			if rep.SelectedBytes == 0 {
				t.Error("analyzer selected nothing")
			}
			ratio := rep.DataRatio()
			if ratio <= 0 || ratio > 0.6 {
				t.Errorf("data ratio %.2f out of plausible range", ratio)
			}
			k.RunIteration(rt)
			if err := k.Validate(); err != nil {
				t.Fatalf("results corrupted by migration: %v", err)
			}
		})
	}
}

func TestATMemImprovesSkewedWorkloads(t *testing.T) {
	// End-to-end speedup sanity on the NVM testbed for the workloads
	// with strong hot regions (PR is the paper's Table 4 subject).
	for _, name := range []string{"pr", "bc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			base := measure(t, name, atmem.PolicyBaseline)
			at := measure(t, name, atmem.PolicyATMem)
			if at >= base {
				t.Errorf("ATMem (%.6fs) not faster than baseline (%.6fs)", at, base)
			}
		})
	}
}

// measure runs profile+optimize (for ATMem) and returns the measured
// post-warm iteration time on twitter.
func measure(t *testing.T, name string, policy atmem.Policy) float64 {
	t.Helper()
	rt, err := atmem.NewRuntime(atmem.NVMDRAM(), atmem.Options{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	k, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Setup(rt, "twitter"); err != nil {
		t.Fatal(err)
	}
	if policy == atmem.PolicyATMem {
		rt.ProfilingStart()
	}
	k.RunIteration(rt)
	if policy == atmem.PolicyATMem {
		rt.ProfilingStop()
		if _, err := rt.Optimize(); err != nil {
			t.Fatal(err)
		}
	}
	k.RunIteration(rt)
	return k.RunIteration(rt).Seconds
}

func TestBFSLevelsMatchReferenceFromArbitraryRoots(t *testing.T) {
	g, err := graph.Load("pokec")
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range []int{1, 77, g.NumVertices() - 1} {
		rt, err := atmem.NewRuntime(atmem.NVMDRAM())
		if err != nil {
			t.Fatal(err)
		}
		b := &BFS{Root: root}
		if err := b.Setup(rt, "pokec"); err != nil {
			t.Fatal(err)
		}
		b.RunIteration(rt)
		if err := b.Validate(); err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
	}
}

func TestSSSPDistancesAreShortestPaths(t *testing.T) {
	rt, err := atmem.NewRuntime(atmem.NVMDRAM())
	if err != nil {
		t.Fatal(err)
	}
	s := &SSSP{}
	if err := s.Setup(rt, "pokec"); err != nil {
		t.Fatal(err)
	}
	s.RunIteration(rt)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Triangle inequality spot check over edges.
	g, _ := graph.Load("pokec")
	dist := s.Distances()
	for v := 0; v < g.NumVertices(); v++ {
		if dist[v] == infDist {
			continue
		}
		for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
			d := g.Edges[i]
			if dist[d] > dist[v]+g.Weights[i]+1e-3 {
				t.Fatalf("edge %d->%d violates relaxation: %v > %v + %v",
					v, d, dist[d], dist[v], g.Weights[i])
			}
		}
	}
}

func TestCCLabelsAreComponentMinima(t *testing.T) {
	rt, err := atmem.NewRuntime(atmem.NVMDRAM())
	if err != nil {
		t.Fatal(err)
	}
	k := &CC{}
	if err := k.Setup(rt, "pokec"); err != nil {
		t.Fatal(err)
	}
	k.RunIteration(rt)
	labels := k.Labels()
	sym, _ := graph.LoadSymmetric("pokec")
	for v := 0; v < sym.NumVertices(); v++ {
		if labels[v] > uint32(v) {
			t.Fatalf("label[%d] = %d exceeds own id", v, labels[v])
		}
		for _, d := range sym.Neighbors(v) {
			if labels[v] != labels[d] {
				t.Fatalf("edge %d-%d crosses labels %d/%d", v, d, labels[v], labels[d])
			}
		}
	}
}

func TestPageRankMassConservation(t *testing.T) {
	rt, err := atmem.NewRuntime(atmem.NVMDRAM())
	if err != nil {
		t.Fatal(err)
	}
	p := &PageRank{Iterations: 2}
	if err := p.Setup(rt, "pokec"); err != nil {
		t.Fatal(err)
	}
	p.RunIteration(rt)
	var sum float64
	for _, r := range p.Ranks() {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	// Total mass stays at most 1 (dangling vertices leak mass in the
	// push formulation, so it can be below 1, never above).
	if sum > 1.000001 {
		t.Errorf("rank mass %v exceeds 1", sum)
	}
	if sum < 0.1 {
		t.Errorf("rank mass %v collapsed", sum)
	}
}

func TestBCScoresNonNegative(t *testing.T) {
	rt, err := atmem.NewRuntime(atmem.NVMDRAM())
	if err != nil {
		t.Fatal(err)
	}
	b := &BC{}
	if err := b.Setup(rt, "pokec"); err != nil {
		t.Fatal(err)
	}
	b.RunIteration(rt)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	anyPositive := false
	for _, s := range b.Scores() {
		if s < 0 {
			t.Fatal("negative centrality")
		}
		if s > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Error("all centralities zero")
	}
}

func TestSpMVRepeatedIterations(t *testing.T) {
	rt, err := atmem.NewRuntime(atmem.NVMDRAM())
	if err != nil {
		t.Fatal(err)
	}
	s := &SpMV{}
	if err := s.Setup(rt, "pokec"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.RunIteration(rt)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedBoundsCoverAllVertices(t *testing.T) {
	g, err := graph.Load("twitter")
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 3, 8, 16} {
		b := balancedBounds(g.Offsets, threads)
		if len(b) != threads+1 || b[0] != 0 || b[threads] != g.NumVertices() {
			t.Fatalf("threads=%d bounds=%v", threads, b)
		}
		total := uint64(g.NumEdges())
		for ti := 0; ti < threads; ti++ {
			if b[ti] > b[ti+1] {
				t.Fatalf("non-monotone bounds %v", b)
			}
			edges := g.Offsets[b[ti+1]] - g.Offsets[b[ti]]
			// Each partition within 3x of the fair share (hub vertices
			// cannot be split, so exact balance is impossible).
			if threads > 1 && edges > 3*total/uint64(threads)+uint64(g.NumVertices()) {
				t.Errorf("partition %d has %d of %d edges", ti, edges, total)
			}
		}
	}
}

func TestIterationResultAccounting(t *testing.T) {
	_, res := runKernel(t, "bfs", "pokec", atmem.NVMDRAM(), atmem.PolicyBaseline)
	if res.LLCMisses() == 0 {
		t.Error("no LLC misses recorded")
	}
	var sum float64
	for _, p := range res.Phases {
		sum += p.Seconds()
	}
	if sum != res.Seconds {
		t.Errorf("phase sum %v != total %v", sum, res.Seconds)
	}
	_ = res.TLBMisses()
}

func TestDOBFSMatchesBFS(t *testing.T) {
	rt, err := atmem.NewRuntime(atmem.NVMDRAM())
	if err != nil {
		t.Fatal(err)
	}
	d := &DOBFS{}
	if err := d.Setup(rt, "twitter"); err != nil {
		t.Fatal(err)
	}
	d.RunIteration(rt)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// On a hub-rooted social graph the traversal must actually switch
	// directions (that is the point of the hybrid).
	if d.PullRounds == 0 {
		t.Error("direction-optimizing BFS never switched to bottom-up")
	}
	if d.PushRounds == 0 {
		t.Error("direction-optimizing BFS never ran top-down")
	}
}

func TestDOBFSViaFactoryAndOptimize(t *testing.T) {
	rt, err := atmem.NewRuntime(atmem.NVMDRAM(), atmem.Options{Policy: atmem.PolicyATMem})
	if err != nil {
		t.Fatal(err)
	}
	k, err := New("dobfs")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Setup(rt, "pokec"); err != nil {
		t.Fatal(err)
	}
	rt.ProfilingStart()
	k.RunIteration(rt)
	rt.ProfilingStop()
	if _, err := rt.Optimize(); err != nil {
		t.Fatal(err)
	}
	k.RunIteration(rt)
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
}
