package apps

import (
	"fmt"
	"sort"
	"sync/atomic"

	"atmem"
	"atmem/graph"
)

// DOBFS is a direction-optimizing breadth-first search (Beamer et al.):
// rounds with small frontiers expand top-down (push) like BFS; once the
// frontier grows past a threshold fraction of the graph, the traversal
// switches bottom-up (pull) — every undiscovered vertex scans its
// in-neighbours for a parent and stops at the first hit — then switches
// back when the frontier shrinks. This is the BFS formulation
// throughput-oriented frameworks actually ship, and it stresses both CSR
// directions, so ATMem sees a richer mix of hot regions than plain push
// BFS.
//
// One RunIteration is one complete traversal from the fixed root.
type DOBFS struct {
	// Root overrides the traversal source; 0 selects the
	// max-out-degree hub.
	Root int
	// SwitchFraction is the frontier-size fraction of vertices above
	// which rounds run bottom-up; 0 means 0.05.
	SwitchFraction float64

	g        *graph.Graph
	out      csrData // push direction
	in       csrData // pull direction
	lvl      *atmem.Array[int32]
	frontier *atmem.Array[uint32]
	next     *atmem.Array[uint32]
	root     int

	// PushRounds and PullRounds count the direction decisions of the
	// last RunIteration (exposed for tests and reports).
	PushRounds int
	PullRounds int
}

// Name implements Kernel.
func (b *DOBFS) Name() string { return "dobfs" }

// Setup implements Kernel.
func (b *DOBFS) Setup(rt *atmem.Runtime, dataset string) error {
	g, err := graph.Load(dataset)
	if err != nil {
		return err
	}
	in, err := graph.LoadReverse(dataset)
	if err != nil {
		return err
	}
	b.g = g
	if b.out, err = registerCSR(rt, g, "dobfs.out", false); err != nil {
		return err
	}
	if b.in, err = registerCSR(rt, in, "dobfs.in", false); err != nil {
		return err
	}
	n := g.NumVertices()
	if b.lvl, err = atmem.NewArray[int32](rt, "dobfs.level", n); err != nil {
		return err
	}
	if b.frontier, err = atmem.NewArray[uint32](rt, "dobfs.frontier", n); err != nil {
		return err
	}
	if b.next, err = atmem.NewArray[uint32](rt, "dobfs.next", n); err != nil {
		return err
	}
	b.root = b.Root
	if b.root == 0 {
		b.root = g.MaxDegreeVertex()
	}
	if b.SwitchFraction == 0 {
		b.SwitchFraction = 0.05
	}
	return nil
}

// RunIteration implements Kernel.
func (b *DOBFS) RunIteration(rt *atmem.Runtime) IterationResult {
	var res IterationResult
	n := b.g.NumVertices()
	lvl := b.lvl.Raw()
	for i := range lvl {
		lvl[i] = -1
	}
	lvl[b.root] = 0
	cur := b.frontier.Raw()[:1]
	cur[0] = uint32(b.root)
	b.PushRounds, b.PullRounds = 0, 0

	threads := rt.Threads()
	bufs := make([][]uint32, threads)
	switchLen := int(b.SwitchFraction * float64(n))
	for depth := int32(0); len(cur) > 0; depth++ {
		d := depth
		if len(cur) <= switchLen {
			b.PushRounds++
			frontLen := len(cur)
			res.add(rt.RunPhase(fmt.Sprintf("dobfs.push%d", d), func(c *atmem.Ctx) {
				lo, hi := c.Range(frontLen)
				buf := bufs[c.ID][:0]
				nextBase := c.ID * (n / threads)
				work := 0.0
				front := b.frontier.LoadSeq(c, lo, hi)
				for _, fv := range front {
					v := int(fv)
					elo, ehi := b.out.neighborSpan(c, v)
					for _, dst := range b.out.edges.LoadSeq(c, int(elo), int(ehi)) {
						work++
						b.lvl.SimLoad(c, int(dst))
						if atomic.LoadInt32(&lvl[dst]) != -1 {
							continue
						}
						if atomic.CompareAndSwapInt32(&lvl[dst], -1, d+1) {
							b.lvl.SimStore(c, int(dst))
							b.next.SimStore(c, minInt(nextBase+len(buf), n-1))
							buf = append(buf, dst)
						}
					}
				}
				bufs[c.ID] = buf
				c.Compute(work)
			}))
		} else {
			b.PullRounds++
			// Bottom-up: every undiscovered vertex pulls from its
			// in-neighbours. Each vertex is written by exactly one
			// thread, but neighbours' levels are read across threads, so
			// the raw array is accessed atomically; the decision is
			// timing-independent because levels written this round are
			// d+1 and the reads compare against d.
			// The edge scan stays element-at-a-time: it exits at the
			// first discovered parent, and a bulk load would charge
			// edges the real traversal never touches.
			res.add(rt.RunPhase(fmt.Sprintf("dobfs.pull%d", d), func(c *atmem.Ctx) {
				lo, hi := b.in.span(c)
				buf := bufs[c.ID][:0]
				nextBase := c.ID * (n / threads)
				work := 0.0
				for v := lo; v < hi; v++ {
					b.lvl.SimLoad(c, v)
					if atomic.LoadInt32(&lvl[v]) != -1 {
						continue
					}
					elo, ehi := b.in.neighborSpan(c, v)
					for i := elo; i < ehi; i++ {
						u := b.in.edges.Load(c, int(i))
						work++
						b.lvl.SimLoad(c, int(u))
						if atomic.LoadInt32(&lvl[u]) == d {
							atomic.StoreInt32(&lvl[v], d+1)
							b.lvl.SimStore(c, v)
							b.next.SimStore(c, minInt(nextBase+len(buf), n-1))
							buf = append(buf, uint32(v))
							break
						}
					}
				}
				bufs[c.ID] = buf
				c.Compute(work)
			}))
		}
		merged := b.next.Raw()[:0]
		for _, buf := range bufs {
			merged = append(merged, buf...)
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		copy(b.frontier.Raw(), merged)
		cur = b.frontier.Raw()[:len(merged)]
	}
	return res
}

// Levels returns the computed level array (after RunIteration).
func (b *DOBFS) Levels() []int32 { return b.lvl.Raw() }

// Validate implements Kernel against the serial reference BFS.
func (b *DOBFS) Validate() error {
	want := referenceBFS(b.g, b.root)
	got := b.lvl.Raw()
	for v := range want {
		if want[v] != got[v] {
			return fmt.Errorf("dobfs: level[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	return nil
}
