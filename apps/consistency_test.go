package apps

import (
	"testing"

	"atmem"
	"atmem/graph"
)

// TestBFSVariantsAgree: plain push BFS and the direction-optimizing
// hybrid must compute identical levels from the same root.
func TestBFSVariantsAgree(t *testing.T) {
	rt1, err := atmem.NewRuntime(atmem.NVMDRAM())
	if err != nil {
		t.Fatal(err)
	}
	plain := &BFS{}
	if err := plain.Setup(rt1, "pokec"); err != nil {
		t.Fatal(err)
	}
	plain.RunIteration(rt1)

	rt2, err := atmem.NewRuntime(atmem.NVMDRAM())
	if err != nil {
		t.Fatal(err)
	}
	hybrid := &DOBFS{}
	if err := hybrid.Setup(rt2, "pokec"); err != nil {
		t.Fatal(err)
	}
	hybrid.RunIteration(rt2)

	a, b := plain.Levels(), hybrid.Levels()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("level[%d]: bfs %d vs dobfs %d", v, a[v], b[v])
		}
	}
}

// TestSSSPAgreesWithBFSOnUnitWeights: with every edge weight forced to
// one, shortest-path distances equal BFS levels.
func TestSSSPAgreesWithBFSOnUnitWeights(t *testing.T) {
	base, err := graph.Load("pokec")
	if err != nil {
		t.Fatal(err)
	}
	graph.RegisterDataset("pokec-unit", func() (*graph.Graph, error) {
		g := &graph.Graph{
			Name:    "pokec-unit",
			Offsets: base.Offsets,
			Edges:   base.Edges,
			Weights: make([]float32, len(base.Edges)),
		}
		for i := range g.Weights {
			g.Weights[i] = 1
		}
		return g, nil
	})

	rt1, err := atmem.NewRuntime(atmem.NVMDRAM())
	if err != nil {
		t.Fatal(err)
	}
	s := &SSSP{}
	if err := s.Setup(rt1, "pokec-unit"); err != nil {
		t.Fatal(err)
	}
	s.RunIteration(rt1)

	rt2, err := atmem.NewRuntime(atmem.NVMDRAM())
	if err != nil {
		t.Fatal(err)
	}
	b := &BFS{}
	if err := b.Setup(rt2, "pokec-unit"); err != nil {
		t.Fatal(err)
	}
	b.RunIteration(rt2)

	dist, lvl := s.Distances(), b.Levels()
	for v := range lvl {
		switch {
		case lvl[v] == -1:
			if dist[v] != infDist {
				t.Fatalf("vertex %d unreachable by BFS but dist %v", v, dist[v])
			}
		case float32(lvl[v]) != dist[v]:
			t.Fatalf("vertex %d: level %d vs unit-weight dist %v", v, lvl[v], dist[v])
		}
	}
}

// TestCCAgreesWithBFSReachability: on the symmetrized graph, two
// vertices share a CC label iff an (undirected) path connects them;
// cross-check labels against a BFS from the component minimum.
func TestCCAgreesWithBFSReachability(t *testing.T) {
	rt, err := atmem.NewRuntime(atmem.NVMDRAM())
	if err != nil {
		t.Fatal(err)
	}
	k := &CC{}
	if err := k.Setup(rt, "pokec"); err != nil {
		t.Fatal(err)
	}
	k.RunIteration(rt)
	labels := k.Labels()
	sym, _ := graph.LoadSymmetric("pokec")
	// BFS from the global minimum-label vertex (usually 0): everything
	// it reaches must carry its label and vice versa.
	root := 0
	lvl := referenceBFS(sym, root)
	rootLabel := labels[root]
	for v := range lvl {
		reachable := lvl[v] != -1
		sameLabel := labels[v] == rootLabel
		if reachable != sameLabel {
			t.Fatalf("vertex %d: reachable=%v label-match=%v", v, reachable, sameLabel)
		}
	}
}

// TestPageRankOrderIsDegreeCorrelated: hub vertices must end with higher
// rank than the median vertex — a sanity property of any correct PR.
func TestPageRankOrderIsDegreeCorrelated(t *testing.T) {
	rt, err := atmem.NewRuntime(atmem.NVMDRAM())
	if err != nil {
		t.Fatal(err)
	}
	p := &PageRank{Iterations: 8}
	if err := p.Setup(rt, "twitter"); err != nil {
		t.Fatal(err)
	}
	p.RunIteration(rt)
	g, _ := graph.Load("twitter")
	// In-degree hub: the vertex with most in-edges.
	in := make([]int, g.NumVertices())
	for _, d := range g.Edges {
		in[d]++
	}
	hub, best := 0, -1
	for v, c := range in {
		if c > best {
			hub, best = v, c
		}
	}
	ranks := p.Ranks()
	median := ranks[len(ranks)/2]
	if ranks[hub] <= median {
		t.Errorf("hub rank %g not above median %g", ranks[hub], median)
	}
}
