package apps

import (
	"fmt"
	"math"

	"atmem"
	"atmem/graph"
)

// SpMV is the sparse matrix-vector multiplication generalization of §9:
// the graph's out-CSR is taken as a sparse matrix A (rows = vertices,
// column indices = neighbour ids, values = edge weights) and one
// RunIteration computes y = A·x, then feeds the normalized y back as the
// next x (a power-method step), so repeated iterations keep exercising
// the same skewed column-access pattern the paper describes for sparse
// matrix computations.
type SpMV struct {
	g   *graph.Graph
	mat csrData
	x   *atmem.Array[float64]
	y   *atmem.Array[float64]

	iterations int
	threads    int
}

// Name implements Kernel.
func (s *SpMV) Name() string { return "spmv" }

// Setup implements Kernel.
func (s *SpMV) Setup(rt *atmem.Runtime, dataset string) error {
	g, err := graph.Load(dataset)
	if err != nil {
		return err
	}
	s.g = g
	if s.mat, err = registerCSR(rt, g, "spmv", true); err != nil {
		return err
	}
	n := g.NumVertices()
	if s.x, err = atmem.NewArray[float64](rt, "spmv.x", n); err != nil {
		return err
	}
	if s.y, err = atmem.NewArray[float64](rt, "spmv.y", n); err != nil {
		return err
	}
	s.x.Fill(1)
	return nil
}

// RunIteration implements Kernel: y = A·x followed by x = y / ‖y‖₁·n.
func (s *SpMV) RunIteration(rt *atmem.Runtime) IterationResult {
	var res IterationResult
	n := s.g.NumVertices()
	res.add(rt.RunPhase("spmv.multiply", func(c *atmem.Ctx) {
		lo, hi := s.mat.span(c)
		work := 0.0
		for row := lo; row < hi; row++ {
			elo, ehi := s.mat.neighborSpan(c, row)
			cols := s.mat.edges.LoadSeq(c, int(elo), int(ehi))
			vals := s.mat.weights.LoadSeq(c, int(elo), int(ehi))
			sum := 0.0
			for i, col := range cols {
				sum += float64(vals[i]) * s.x.Load(c, int(col))
				work += 2
			}
			s.y.Store(c, row, sum)
		}
		c.Compute(work)
	}))
	// Normalize y into x (streaming) so the iteration can repeat.
	norms := make([]float64, rt.Threads())
	res.add(rt.RunPhase("spmv.norm", func(c *atmem.Ctx) {
		lo, hi := c.Range(n)
		norms[c.ID] = s.y.ReduceSeq(c, lo, hi, 0,
			func(acc float64, v float64) float64 { return acc + math.Abs(v) })
		c.Compute(float64(hi - lo))
	}))
	s.threads = rt.Threads()
	var norm float64
	for _, v := range norms {
		norm += v
	}
	if norm == 0 {
		norm = 1
	}
	scale := float64(n) / norm
	res.add(rt.RunPhase("spmv.scale", func(c *atmem.Ctx) {
		lo, hi := c.Range(n)
		ys := s.y.LoadSeq(c, lo, hi)
		xs := s.x.StoreSeq(c, lo, hi)
		for i, v := range ys {
			xs[i] = v * scale
		}
		c.Compute(float64(hi - lo))
	}))
	s.iterations++
	return res
}

// Result returns the current vector x.
func (s *SpMV) Result() []float64 { return s.x.Raw() }

// Validate implements Kernel against a serial replay of the same number
// of normalized multiply steps (replicating the parallel partitioned
// norm reduction exactly, so the comparison is bit-level deterministic).
func (s *SpMV) Validate() error {
	want := referenceSpMV(s.g, s.iterations, s.threads)
	got := s.x.Raw()
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("spmv: x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	return nil
}

func referenceSpMV(g *graph.Graph, iters, threads int) []float64 {
	n := g.NumVertices()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	if threads <= 0 {
		threads = 1
	}
	per := (n + threads - 1) / threads
	for it := 0; it < iters; it++ {
		for row := 0; row < n; row++ {
			sum := 0.0
			for i := g.Offsets[row]; i < g.Offsets[row+1]; i++ {
				sum += float64(g.Weights[i]) * x[g.Edges[i]]
			}
			y[row] = sum
		}
		// Partitioned norm reduction, matching the parallel kernel.
		var norm float64
		for t := 0; t < threads; t++ {
			lo, hi := t*per, (t+1)*per
			if lo > n {
				lo = n
			}
			if hi > n {
				hi = n
			}
			sum := 0.0
			for i := lo; i < hi; i++ {
				sum += math.Abs(y[i])
			}
			norm += sum
		}
		if norm == 0 {
			norm = 1
		}
		scale := float64(n) / norm
		for i := range x {
			x[i] = y[i] * scale
		}
	}
	return x
}
