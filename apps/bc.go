package apps

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"atmem"
	"atmem/graph"
)

// BC computes single-source betweenness centrality with Brandes'
// algorithm in frontier form: a push BFS collects one sorted vertex list
// per level, a forward sweep per level gathers shortest-path counts sigma
// from in-neighbours one level up, and a backward sweep per level gathers
// dependencies delta from out-neighbours one level down. Every phase
// iterates only the level's frontier list, so each edge is traversed a
// constant number of times per pass and the hub levels dominate the
// access stream — the skew ATMem exploits.
//
// Sigma/delta gathers write each vertex from exactly one thread, so the
// computation is deterministic.
//
// One RunIteration is one complete single-source pass from the fixed
// root (the paper's BC benchmark measures per-traversal time).
type BC struct {
	// Root overrides the source; 0 selects the max-out-degree hub.
	Root int

	g     *graph.Graph
	in    csrData // transpose: gather sigma from predecessors
	out   csrData // original: expand BFS, gather delta from successors
	lvl   *atmem.Array[int32]
	sigma *atmem.Array[float64]
	delta *atmem.Array[float64]
	bc    *atmem.Array[float64]
	front *atmem.Array[uint32]
	root  int
}

// Name implements Kernel.
func (b *BC) Name() string { return "bc" }

// Setup implements Kernel.
func (b *BC) Setup(rt *atmem.Runtime, dataset string) error {
	g, err := graph.Load(dataset)
	if err != nil {
		return err
	}
	in, err := graph.LoadReverse(dataset)
	if err != nil {
		return err
	}
	b.g = g
	if b.in, err = registerCSR(rt, in, "bc.in", false); err != nil {
		return err
	}
	if b.out, err = registerCSR(rt, g, "bc.out", false); err != nil {
		return err
	}
	n := g.NumVertices()
	if b.lvl, err = atmem.NewArray[int32](rt, "bc.level", n); err != nil {
		return err
	}
	if b.sigma, err = atmem.NewArray[float64](rt, "bc.sigma", n); err != nil {
		return err
	}
	if b.delta, err = atmem.NewArray[float64](rt, "bc.delta", n); err != nil {
		return err
	}
	if b.bc, err = atmem.NewArray[float64](rt, "bc.score", n); err != nil {
		return err
	}
	if b.front, err = atmem.NewArray[uint32](rt, "bc.frontier", n); err != nil {
		return err
	}
	b.root = b.Root
	if b.root == 0 {
		b.root = g.MaxDegreeVertex()
	}
	return nil
}

// RunIteration implements Kernel.
func (b *BC) RunIteration(rt *atmem.Runtime) IterationResult {
	var res IterationResult
	n := b.g.NumVertices()
	lvl := b.lvl.Raw()
	for i := range lvl {
		lvl[i] = -1
	}
	lvl[b.root] = 0
	b.sigma.Fill(0)
	b.sigma.Raw()[b.root] = 1
	b.delta.Fill(0)

	threads := rt.Threads()
	bufs := make([][]uint32, threads)

	// Phase 1: push BFS, keeping the sorted frontier of every level.
	levels := [][]uint32{{uint32(b.root)}}
	cur := []uint32{uint32(b.root)}
	for depth := int32(0); len(cur) > 0; depth++ {
		d := depth
		frontier := cur
		copy(b.front.Raw(), frontier)
		frontLen := len(frontier)
		res.add(rt.RunPhase(fmt.Sprintf("bc.bfs%d", d), func(c *atmem.Ctx) {
			lo, hi := c.Range(frontLen)
			buf := bufs[c.ID][:0]
			nextBase := c.ID * (n / threads)
			work := 0.0
			for _, fv := range b.front.LoadSeq(c, lo, hi) {
				v := int(fv)
				elo, ehi := b.out.neighborSpan(c, v)
				for _, dst := range b.out.edges.LoadSeq(c, int(elo), int(ehi)) {
					work++
					b.lvl.SimLoad(c, int(dst))
					if atomic.LoadInt32(&lvl[dst]) != -1 {
						continue
					}
					if atomic.CompareAndSwapInt32(&lvl[dst], -1, d+1) {
						b.lvl.SimStore(c, int(dst))
						b.front.SimStore(c, minInt(nextBase+len(buf), n-1))
						buf = append(buf, dst)
					}
				}
			}
			bufs[c.ID] = buf
			c.Compute(work)
		}))
		var next []uint32
		for _, buf := range bufs {
			next = append(next, buf...)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		if len(next) > 0 {
			levels = append(levels, next)
		}
		cur = next
	}

	// Phase 2: forward sigma accumulation, one sweep per level, each
	// vertex gathering from in-neighbours one level up (deterministic:
	// single writer per vertex, fixed gather order).
	for d := 1; d < len(levels); d++ {
		depth := int32(d)
		frontier := levels[d]
		copy(b.front.Raw(), frontier)
		frontLen := len(frontier)
		res.add(rt.RunPhase(fmt.Sprintf("bc.sigma%d", d), func(c *atmem.Ctx) {
			lo, hi := c.Range(frontLen)
			work := 0.0
			for _, fv := range b.front.LoadSeq(c, lo, hi) {
				v := int(fv)
				elo, ehi := b.in.neighborSpan(c, v)
				sum := 0.0
				for _, u := range b.in.edges.LoadSeq(c, int(elo), int(ehi)) {
					work += 2
					if b.lvl.Load(c, int(u)) == depth-1 {
						sum += b.sigma.Load(c, int(u))
					}
				}
				b.sigma.Store(c, v, sum)
			}
			c.Compute(work)
		}))
	}

	// Phase 3: backward dependency accumulation, deepest level first.
	for d := len(levels) - 2; d >= 0; d-- {
		depth := int32(d)
		frontier := levels[d]
		copy(b.front.Raw(), frontier)
		frontLen := len(frontier)
		res.add(rt.RunPhase(fmt.Sprintf("bc.delta%d", d), func(c *atmem.Ctx) {
			lo, hi := c.Range(frontLen)
			work := 0.0
			for _, fv := range b.front.LoadSeq(c, lo, hi) {
				v := int(fv)
				sv := b.sigma.Load(c, v)
				if sv == 0 {
					continue
				}
				elo, ehi := b.out.neighborSpan(c, v)
				sum := 0.0
				for _, w := range b.out.edges.LoadSeq(c, int(elo), int(ehi)) {
					work += 2
					if b.lvl.Load(c, int(w)) == depth+1 {
						sw := b.sigma.Load(c, int(w))
						if sw > 0 {
							sum += sv / sw * (1 + b.delta.Load(c, int(w)))
						}
					}
				}
				b.delta.Store(c, v, sum)
				if v != b.root {
					b.bc.Store(c, v, b.bc.Load(c, v)+sum)
				}
			}
			c.Compute(work)
		}))
	}
	return res
}

// Scores returns the accumulated centrality scores.
func (b *BC) Scores() []float64 { return b.bc.Raw() }

// Validate implements Kernel: sigma and delta must match a serial Brandes
// pass.
func (b *BC) Validate() error {
	wantSigma, wantDelta := referenceBrandes(b.g, b.root)
	gotS := b.sigma.Raw()
	gotD := b.delta.Raw()
	for v := range wantSigma {
		if math.Abs(wantSigma[v]-gotS[v]) > 1e-9*(1+math.Abs(wantSigma[v])) {
			return fmt.Errorf("bc: sigma[%d] = %g, want %g", v, gotS[v], wantSigma[v])
		}
		if math.Abs(wantDelta[v]-gotD[v]) > 1e-9*(1+math.Abs(wantDelta[v])) {
			return fmt.Errorf("bc: delta[%d] = %g, want %g", v, gotD[v], wantDelta[v])
		}
	}
	return nil
}

// referenceBrandes is a serial single-source Brandes pass over out-edges.
func referenceBrandes(g *graph.Graph, root int) (sigma, delta []float64) {
	n := g.NumVertices()
	lvl := referenceBFS(g, root)
	sigma = make([]float64, n)
	delta = make([]float64, n)
	sigma[root] = 1
	maxLevel := int32(0)
	for _, l := range lvl {
		if l > maxLevel {
			maxLevel = l
		}
	}
	// Forward: accumulate sigma level by level over out-edges.
	for d := int32(0); d < maxLevel; d++ {
		for v := 0; v < n; v++ {
			if lvl[v] != d || sigma[v] == 0 {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if lvl[w] == d+1 {
					sigma[w] += sigma[v]
				}
			}
		}
	}
	// Backward: dependencies, deepest first.
	for d := maxLevel - 1; d >= 0; d-- {
		for v := 0; v < n; v++ {
			if lvl[v] != d || sigma[v] == 0 {
				continue
			}
			sum := 0.0
			for _, w := range g.Neighbors(v) {
				if lvl[w] == d+1 && sigma[w] > 0 {
					sum += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			delta[v] = sum
		}
	}
	return sigma, delta
}
