package apps

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"unsafe"

	"atmem"
	"atmem/graph"
)

// SSSP is a frontier-based Bellman-Ford single-source shortest-path
// solver in the push formulation SIMD graph frameworks use: each round,
// the vertices whose distance improved relax their out-edges with an
// atomic floating-point minimum on the distance array, and every
// destination that improved joins the next frontier exactly once
// (claimed through a round-stamp array). Atomic minima never lose
// updates, so the final distances are the exact shortest-path fixed
// point regardless of thread interleaving.
//
// One RunIteration runs rounds until the frontier empties (bounded by
// MaxRounds as a safety net).
type SSSP struct {
	// Source overrides the source vertex; 0 selects the
	// max-out-degree hub.
	Source int
	// MaxRounds bounds the relaxation rounds; 0 means 1024.
	MaxRounds int

	g        *graph.Graph
	csr      csrData // out-edges with weights
	dist     *atmem.Array[float32]
	stamp    *atmem.Array[int32]
	frontier *atmem.Array[uint32]
	next     *atmem.Array[uint32]
	source   int
}

// Name implements Kernel.
func (s *SSSP) Name() string { return "sssp" }

// Setup implements Kernel.
func (s *SSSP) Setup(rt *atmem.Runtime, dataset string) error {
	g, err := graph.Load(dataset)
	if err != nil {
		return err
	}
	s.g = g
	if s.csr, err = registerCSR(rt, g, "sssp", true); err != nil {
		return err
	}
	n := g.NumVertices()
	if s.dist, err = atmem.NewArray[float32](rt, "sssp.dist", n); err != nil {
		return err
	}
	if s.stamp, err = atmem.NewArray[int32](rt, "sssp.stamp", n); err != nil {
		return err
	}
	if s.frontier, err = atmem.NewArray[uint32](rt, "sssp.frontier", n); err != nil {
		return err
	}
	if s.next, err = atmem.NewArray[uint32](rt, "sssp.next", n); err != nil {
		return err
	}
	s.source = s.Source
	if s.source == 0 {
		s.source = g.MaxDegreeVertex()
	}
	if s.MaxRounds == 0 {
		s.MaxRounds = 1024
	}
	return nil
}

const infDist = float32(math.MaxFloat32)

// float32Bits aliases a float32 slice as uint32 bit patterns for atomic
// access. Valid because float32 and uint32 share size and alignment, and
// the comparison order of non-negative floats matches their bit order.
func float32Bits(xs []float32) []uint32 {
	if len(xs) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&xs[0])), len(xs))
}

// atomicMinFloat32 lowers the float stored in *bits to v if v is smaller,
// returning whether it changed the value.
func atomicMinFloat32(bits *uint32, v float32) bool {
	nv := math.Float32bits(v)
	for {
		cur := atomic.LoadUint32(bits)
		if math.Float32frombits(cur) <= v {
			return false
		}
		if atomic.CompareAndSwapUint32(bits, cur, nv) {
			return true
		}
	}
}

// RunIteration implements Kernel.
func (s *SSSP) RunIteration(rt *atmem.Runtime) IterationResult {
	var res IterationResult
	n := s.g.NumVertices()
	dist := s.dist.Raw()
	for i := range dist {
		dist[i] = infDist
	}
	dist[s.source] = 0
	distBits := float32Bits(dist)
	stamp := s.stamp.Raw()
	for i := range stamp {
		stamp[i] = -1
	}

	cur := s.frontier.Raw()[:1]
	cur[0] = uint32(s.source)
	threads := rt.Threads()
	bufs := make([][]uint32, threads)
	for round := int32(0); len(cur) > 0 && int(round) < s.MaxRounds; round++ {
		r := round
		frontLen := len(cur)
		res.add(rt.RunPhase(fmt.Sprintf("sssp.round%d", r), func(c *atmem.Ctx) {
			lo, hi := c.Range(frontLen)
			buf := bufs[c.ID][:0]
			nextBase := c.ID * (n / threads)
			work := 0.0
			front := s.frontier.LoadSeq(c, lo, hi)
			for _, fv := range front {
				v := int(fv)
				// dist[v] may be lowered concurrently by another thread's
				// relaxation; the atomic read keeps the race detector
				// clean and any value read still converges to the same
				// fixed point.
				s.dist.SimLoad(c, v)
				dv := math.Float32frombits(atomic.LoadUint32(&distBits[v]))
				elo, ehi := s.csr.neighborSpan(c, v)
				dsts := s.csr.edges.LoadSeq(c, int(elo), int(ehi))
				ws := s.csr.weights.LoadSeq(c, int(elo), int(ehi))
				for ei, dst := range dsts {
					w := ws[ei]
					work += 2
					nd := dv + w
					s.dist.SimLoad(c, int(dst))
					if !atomicMinFloat32(&distBits[dst], nd) {
						continue
					}
					s.dist.SimStore(c, int(dst))
					s.stamp.SimLoad(c, int(dst))
					old := atomic.LoadInt32(&stamp[dst])
					if old != r && atomic.CompareAndSwapInt32(&stamp[dst], old, r) {
						s.stamp.SimStore(c, int(dst))
						s.next.SimStore(c, minInt(nextBase+len(buf), n-1))
						buf = append(buf, dst)
					}
				}
			}
			bufs[c.ID] = buf
			c.Compute(work)
		}))
		merged := s.next.Raw()[:0]
		for _, buf := range bufs {
			merged = append(merged, buf...)
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		merged = dedupSorted(merged)
		copy(s.frontier.Raw(), merged)
		cur = s.frontier.Raw()[:len(merged)]
	}
	return res
}

// dedupSorted removes adjacent duplicates in place.
func dedupSorted(xs []uint32) []uint32 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Distances returns the computed distances (after RunIteration).
func (s *SSSP) Distances() []float32 { return s.dist.Raw() }

// Validate implements Kernel against a serial Bellman-Ford reference.
func (s *SSSP) Validate() error {
	want := referenceSSSP(s.g, s.source)
	got := s.dist.Raw()
	for v := range want {
		if want[v] != got[v] {
			return fmt.Errorf("sssp: dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	return nil
}

// referenceSSSP is a serial Bellman-Ford over out-edges.
func referenceSSSP(g *graph.Graph, source int) []float32 {
	n := g.NumVertices()
	dist := make([]float32, n)
	for i := range dist {
		dist[i] = infDist
	}
	dist[source] = 0
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			if dist[v] == infDist {
				continue
			}
			for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
				d := g.Edges[i]
				if nd := dist[v] + g.Weights[i]; nd < dist[d] {
					dist[d] = nd
					changed = true
				}
			}
		}
	}
	return dist
}
