package atmem_test

import (
	"fmt"

	"atmem"
)

// Example reproduces the paper's Listing-1 session: allocate data
// objects through the runtime, profile the first iteration, migrate the
// critical chunks, and keep computing on the optimized placement.
func Example() {
	rt, err := atmem.NewRuntime(atmem.NVMDRAM(), atmem.Options{Policy: atmem.PolicyATMem})
	if err != nil {
		panic(err)
	}

	// atmem_malloc: a hot array (reused heavily) and a cold one.
	hot, err := atmem.NewArray[uint64](rt, "hot", 32<<10)
	if err != nil {
		panic(err)
	}
	cold, err := atmem.NewArray[uint64](rt, "cold", 512<<10)
	if err != nil {
		panic(err)
	}

	work := func(c *atmem.Ctx) {
		lo, hi := c.Range(hot.Len())
		for rep := 0; rep < 8; rep++ {
			for i := lo; i < hi; i++ {
				hot.Load(c, (i*7919)%hot.Len())
			}
		}
		clo, chi := c.Range(cold.Len())
		for i := clo; i < chi; i++ {
			cold.Load(c, (i*104729)%cold.Len())
		}
	}

	// atmem_profiling_start / one profiled iteration / stop.
	rt.ProfilingStart()
	rt.RunPhase("iteration-0", work)
	rt.ProfilingStop()

	// atmem_optimize: analyze the samples, migrate hot chunks to DRAM.
	rep, err := rt.Optimize()
	if err != nil {
		panic(err)
	}
	fmt.Println("engine:", rep.Engine)
	fmt.Println("hot array fully on DRAM:", hot.Object().FastBytes() == hot.Object().Size())

	rt.RunPhase("iteration-1", work)
	// Output:
	// engine: atmem
	// hot array fully on DRAM: true
}

// ExampleRuntime_PlacementSummary shows how to inspect where each
// registered object's bytes live after optimization.
func ExampleRuntime_PlacementSummary() {
	rt, err := atmem.NewRuntime(atmem.NVMDRAM(), atmem.Options{Policy: atmem.PolicyAllFast})
	if err != nil {
		panic(err)
	}
	if _, err := atmem.NewArray[float32](rt, "weights", 1024); err != nil {
		panic(err)
	}
	for _, op := range rt.PlacementSummary() {
		fmt.Printf("%s: %d of %d bytes on fast memory\n", op.Name, op.FastBytes, op.Size)
	}
	// Output:
	// weights: 4096 of 4096 bytes on fast memory
}
