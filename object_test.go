package atmem

import (
	"testing"
)

func TestSimLoadStoreChargeWithoutTouchingData(t *testing.T) {
	rt := newTestRuntime(t)
	arr, err := NewArray[uint32](rt, "x", 4096)
	if err != nil {
		t.Fatal(err)
	}
	arr.Fill(7)
	var accesses uint64
	rt.RunPhase("sim", func(c *Ctx) {
		if c.ID != 0 {
			return
		}
		arr.SimLoad(c, 5)
		arr.SimStore(c, 5)
		accesses = 2
	})
	if accesses != 2 {
		t.Fatal("phase did not run")
	}
	if arr.Raw()[5] != 7 {
		t.Error("SimStore touched the backing data")
	}
	last := rt.Phases()[len(rt.Phases())-1]
	if last.Stats.Accesses != 2 {
		t.Errorf("sim accesses %d, want 2", last.Stats.Accesses)
	}
}

func TestArrayTypes(t *testing.T) {
	rt := newTestRuntime(t)
	i8, err := NewArray[int8](rt, "i8", 10)
	if err != nil {
		t.Fatal(err)
	}
	if i8.ElemSize() != 1 || i8.Object().Size() != 10 {
		t.Errorf("int8 array: elem %d size %d", i8.ElemSize(), i8.Object().Size())
	}
	f64, err := NewArray[float64](rt, "f64", 10)
	if err != nil {
		t.Fatal(err)
	}
	if f64.ElemSize() != 8 || f64.Object().Size() != 80 {
		t.Errorf("float64 array: elem %d size %d", f64.ElemSize(), f64.Object().Size())
	}
}

func TestZeroLengthArrayStillAddressable(t *testing.T) {
	rt := newTestRuntime(t)
	arr, err := NewArray[uint64](rt, "empty", 0)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Len() != 0 {
		t.Errorf("len %d", arr.Len())
	}
	if arr.Object().Size() == 0 {
		t.Error("zero-length array must keep an addressable registration")
	}
	if err := arr.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeLengthArrayRejected(t *testing.T) {
	rt := newTestRuntime(t)
	if _, err := NewArray[uint32](rt, "bad", -1); err == nil {
		t.Error("negative length accepted")
	}
}

func TestFreeForeignObjectRejected(t *testing.T) {
	rt1 := newTestRuntime(t)
	rt2 := newTestRuntime(t)
	obj, err := rt1.Malloc("x", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.Free(obj); err == nil {
		t.Error("foreign free accepted")
	}
	if err := rt2.Free(nil); err == nil {
		t.Error("nil free accepted")
	}
}
