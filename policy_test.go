package atmem

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"atmem/internal/core"
)

// trainedTestWeights fits a tiny valid weight vector for tests that
// need a constructible learned policy.
func trainedTestWeights(t *testing.T) core.Weights {
	t.Helper()
	samples := make([]core.TrainSample, 0, 64)
	for i := 0; i < 64; i++ {
		var f core.FeatureVector
		f[core.FeatBias] = 1
		f[core.FeatReadDensity] = float64(i % 13)
		f[core.FeatSizeLog] = 21
		samples = append(samples, core.TrainSample{F: f, Label: f[core.FeatReadDensity]})
	}
	w, _, err := core.TrainPairwise(samples, core.TrainConfig{Iters: 20})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestPolicyConstructionValidation is the construction gate, table
// driven per the API contract: invalid configurations fail at
// New/NewRuntime with typed errors, never at the first Malloc or
// Optimize.
func TestPolicyConstructionValidation(t *testing.T) {
	cases := []struct {
		name    string
		opts    []Option
		wantErr error // nil = any non-nil error acceptable
		ok      bool
	}{
		{"default", nil, nil, true},
		{"enum-atmem", []Option{WithPolicy(PolicyATMem)}, nil, true},
		{"enum-unknown", []Option{WithPolicy(Policy(99))}, ErrUnknownPolicy, false},
		{"enum-negative", []Option{WithPolicy(Policy(-1))}, ErrUnknownPolicy, false},
		{"explicit-nil", []Option{WithPlacementPolicy(nil)}, ErrNilPolicy, false},
		{"paper", []Option{WithPlacementPolicy(PaperPolicy())}, nil, true},
		{"static", []Option{WithPlacementPolicy(StaticPolicy())}, nil, true},
		{"oracle-no-trace", []Option{WithPlacementPolicy(OraclePolicy(nil))}, nil, false},
		{"learned-missing-file", []Option{WithPlacementPolicy(LearnedPolicy("/nonexistent/weights.json"))}, nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt, err := New(NVMDRAM(), tc.opts...)
			if tc.ok {
				if err != nil {
					t.Fatalf("construction failed: %v", err)
				}
				if rt.PlacementPolicy() == nil {
					t.Fatal("no effective policy resolved")
				}
				return
			}
			if err == nil {
				t.Fatal("invalid configuration accepted")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("error = %v, want errors.Is(%v)", err, tc.wantErr)
			}
		})
	}

	// The deprecated variadic-struct constructor shares the same gate.
	if _, err := NewRuntime(NVMDRAM(), Options{Policy: Policy(99)}); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("NewRuntime(Policy(99)) error = %v, want ErrUnknownPolicy", err)
	}
}

// TestLearnedPolicyLoadsFromFile pins the file path of the learned
// constructor: weights written the way cmd/atmem-train writes them
// construct cleanly, and a corrupt file fails at New.
func TestLearnedPolicyLoadsFromFile(t *testing.T) {
	w := trainedTestWeights(t)
	data, err := w.MarshalJSONIndented()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "weights.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rt, err := New(NVMDRAM(), WithPlacementPolicy(LearnedPolicy(path)))
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.PlacementPolicy().Name(); got != "learned" {
		t.Errorf("policy name = %q", got)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{\"version\": 99}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(NVMDRAM(), WithPlacementPolicy(LearnedPolicy(bad))); err == nil {
		t.Error("malformed weights accepted at construction")
	}
}

// TestEnumInterfaceEquivalence pins the deprecated shim against the
// interface path for every enum value: same resolved name, same
// fingerprint, and the same allocation-time placement.
func TestEnumInterfaceEquivalence(t *testing.T) {
	cases := []struct {
		enum Policy
		name string
		fast bool
	}{
		{PolicyBaseline, "baseline", false},
		{PolicyAllFast, "all-fast", true},
		{PolicyPreferFast, "prefer-fast", true},
		{PolicyATMem, "atmem", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pol, err := BuiltinPolicy(tc.enum)
			if err != nil {
				t.Fatal(err)
			}
			if pol.Name() != tc.name {
				t.Errorf("BuiltinPolicy(%v).Name() = %q, want %q", tc.enum, pol.Name(), tc.name)
			}
			viaEnum, err := New(NVMDRAM(), WithPolicy(tc.enum))
			if err != nil {
				t.Fatal(err)
			}
			viaIface, err := New(NVMDRAM(), WithPlacementPolicy(pol))
			if err != nil {
				t.Fatal(err)
			}
			if viaEnum.PlacementPolicy().Fingerprint() != viaIface.PlacementPolicy().Fingerprint() {
				t.Errorf("fingerprints diverge: enum %q vs interface %q",
					viaEnum.PlacementPolicy().Fingerprint(), viaIface.PlacementPolicy().Fingerprint())
			}
			for _, rt := range []*Runtime{viaEnum, viaIface} {
				obj, err := rt.Malloc("x", 1<<20)
				if err != nil {
					t.Fatal(err)
				}
				if onFast := obj.FastBytes() == obj.Size(); onFast != tc.fast {
					t.Errorf("fastBytes=%d of %d, want fast=%v", obj.FastBytes(), obj.Size(), tc.fast)
				}
			}
		})
	}
}

// profileAndOptimize runs the shared equivalence workload: a hot/cold
// array pair, a strided profiled scan of the hot one, then Optimize.
func profileAndOptimize(t *testing.T, rt *Runtime) map[string][2]uint64 {
	t.Helper()
	hot, err := NewArray[uint64](rt, "hot", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewArray[uint64](rt, "cold", 256<<10); err != nil {
		t.Fatal(err)
	}
	fillDeterministic(hot, 3)
	rt.ProfilingStart()
	scanPhase(rt, "scan", hot)
	rt.ProfilingStop()
	if _, err := rt.Optimize(); err != nil {
		t.Fatal(err)
	}
	out := make(map[string][2]uint64)
	for _, o := range rt.Objects() {
		out[o.Name()] = [2]uint64{o.FastBytes(), o.Size()}
	}
	return out
}

// TestPaperPolicyPlacementUnchanged is the regression pin for the API
// redesign: the paper analyzer driven through WithPlacementPolicy must
// land byte-for-byte the same placement as the deprecated enum runtime
// on an identical deterministic workload. (The plan-level byte
// identity is pinned in core's TestAnalyzerPolicyPlansByteIdentical;
// this covers the full runtime path.)
func TestPaperPolicyPlacementUnchanged(t *testing.T) {
	viaEnum, err := New(NVMDRAM(), WithPolicy(PolicyATMem), WithSamplePeriod(64))
	if err != nil {
		t.Fatal(err)
	}
	viaIface, err := New(NVMDRAM(), WithPlacementPolicy(PaperPolicy()), WithSamplePeriod(64))
	if err != nil {
		t.Fatal(err)
	}
	a := profileAndOptimize(t, viaEnum)
	b := profileAndOptimize(t, viaIface)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("placements diverged:\n enum:      %v\n interface: %v", a, b)
	}
	if a["hot"][0] == 0 {
		t.Error("nothing promoted — the workload did not exercise placement")
	}
}

// TestPlanStaleOnPolicyFingerprintChange pins satellite contract #3: a
// compiled plan recorded under one placement policy must not replay
// under a policy with a different fingerprint — swapping in a learned
// or oracle policy degrades the lookup to LookupStale and the run falls
// back to the online loop.
func TestPlanStaleOnPolicyFingerprintChange(t *testing.T) {
	pc := core.NewPlanCache()
	rec, hot := replayFixture(t, pc)
	sig := rec.BuildSignature("synthetic", 0x1234, []string{"scan"})
	if v, err := rec.ArmPlan(sig); err != nil || v != core.LookupMiss {
		t.Fatalf("recording ArmPlan = (%v, %v), want miss", v, err)
	}
	epochOn(t, rec, "e1", hot)
	if _, err := rec.FinishPlan(); err != nil {
		t.Fatal(err)
	}

	// Control: an identically-configured runtime hits. The fixture sets
	// the deprecated enum; the equivalent interface policy shares the
	// analyzer fingerprint, so it must hit too — cached plans survive
	// the enum->interface migration.
	for name, opt := range map[string]Option{
		"enum":  WithPolicy(PolicyATMem),
		"paper": WithPlacementPolicy(PaperPolicy()),
	} {
		rt, _ := replayFixture(t, pc, opt)
		v, err := rt.ArmPlan(rt.BuildSignature("synthetic", 0x1234, []string{"scan"}))
		if err != nil {
			t.Fatal(err)
		}
		if v != core.LookupHit {
			t.Errorf("%s rearm verdict = %v, want hit", name, v)
		}
	}

	// A different policy fingerprint must stale the plan.
	learned := LearnedPolicyFromWeights(trainedTestWeights(t))
	oracle := OraclePolicy(&HeatTrace{Period: 1, Objects: map[string][]float64{"hot": {1, 2, 3}}})
	for name, pol := range map[string]PlacementPolicy{"learned": learned, "oracle": oracle} {
		rt, _ := replayFixture(t, pc, WithPlacementPolicy(pol))
		v, err := rt.ArmPlan(rt.BuildSignature("synthetic", 0x1234, []string{"scan"}))
		if err != nil {
			t.Fatal(err)
		}
		if v != core.LookupStale {
			t.Errorf("%s rearm verdict = %v, want stale", name, v)
		}
		if rt.Replaying() {
			t.Errorf("%s: stale plan armed for replay", name)
		}
	}
}

// TestFeatureExtractionDeterministic pins the learned pipeline's
// reproducibility across scheduler parallelism: the same simulated
// workload profiled under GOMAXPROCS=1 and under all cores must yield
// bit-identical feature vectors — sample attribution is commutative
// counter arithmetic and Featurize walks objects in address order.
func TestFeatureExtractionDeterministic(t *testing.T) {
	extract := func() []core.ChunkFeatures {
		rt, err := New(NVMDRAM(), WithSamplePeriod(64), WithThreads(8))
		if err != nil {
			t.Fatal(err)
		}
		hot, err := NewArray[uint64](rt, "hot", 64<<10)
		if err != nil {
			t.Fatal(err)
		}
		fillDeterministic(hot, 5)
		rt.ProfilingStart()
		scanPhase(rt, "scan", hot)
		rt.ProfilingStop()
		return core.Featurize(rt.Registry(), rt.SamplePeriod(), 0)
	}

	prev := runtime.GOMAXPROCS(1)
	serial := extract()
	runtime.GOMAXPROCS(runtime.NumCPU())
	parallel := extract()
	runtime.GOMAXPROCS(prev)

	if !reflect.DeepEqual(serial, parallel) {
		t.Error("feature vectors differ between GOMAXPROCS=1 and parallel runs")
	}
	var sampled bool
	for _, cf := range serial {
		if cf.F[core.FeatReadDensity] > 0 {
			sampled = true
			break
		}
	}
	if !sampled {
		t.Error("workload produced no sampled features — determinism check is vacuous")
	}
}
