package atmem

// This file is the runtime half of the tier-health subsystem (the
// mechanisms live in internal/health, the quarantine ledger in
// internal/memsim). Each governed epoch brackets its body with two
// health passes:
//
//   - epoch start, before any kernel runs: fire the fault schedule's
//     data-plane orders (corruption byte-flips, latency degradation),
//     then walk the scrubber's CRC references over the fast-tier
//     residency. A mismatch is repaired from the scrubber's backup (the
//     modelled ECC/replica rebuild), the damaged chunk is emergency-
//     demoted through the transactional migration engine, and its pages
//     are retired into the quarantine ledger — so kernels never consume
//     corrupted bytes and the final results of a faulted run stay
//     bit-identical to a fault-free one.
//
//   - epoch end, after the epoch's migration: demote-and-retire any
//     granule the scoreboard condemned this epoch, then re-snapshot the
//     fast-resident chunks. Because nothing runs between the snapshot
//     and the next epoch's verify, a mismatch can only be injected
//     corruption — the scrubber has no false positives.
//
// The governed Optimize additionally treats quarantined bytes as
// capacity shrink (the ledger is charged inside memsim's capacity
// checks), vetoes promotions onto quarantined or distrusted granules,
// and feeds per-region migration outcomes back into the scoreboard.

import (
	"context"
	"fmt"
	"math/rand"

	"atmem/internal/faultinject"
	"atmem/internal/health"
	"atmem/internal/memsim"
	"atmem/internal/migrate"
	"atmem/internal/telemetry"
)

// healthCounters accumulates the runtime's self-healing activity, the
// source of MigrationReport.Health.
type healthCounters struct {
	corruptedChunks    int    // chunks hit by injected corruption orders
	emergencyDemotions int    // chunks demoted by the scrub repair path
	promotionsVetoed   int    // promotion regions dropped by trust checks
	vetoedBytes        uint64 // bytes those regions held
	retiredRanges      int    // successful RetirePages calls
	degradeOrders      int    // latency-degradation orders applied
	// pendingRetire holds ranges whose retirement failed (the evacuation
	// was skipped, e.g. under an active fault storm): the epoch-end heal
	// retries them until the pages can be evacuated and retired.
	pendingRetire []pendingRetire
}

// pendingRetire is one deferred page retirement.
type pendingRetire struct {
	base, size uint64
	reason     string
}

// HealthStats is a point-in-time snapshot of the whole tier-health
// subsystem, for the harness and tests.
type HealthStats struct {
	// Quarantined is the ledger total of retired fast-tier bytes.
	Quarantined uint64
	// QuarantinedRanges counts the ledger's disjoint ranges.
	QuarantinedRanges int
	// Scrub summarizes the scrubber (zero without WithScrubber).
	Scrub health.ScrubStats
	// Board summarizes the scoreboard (zero without health enabled).
	Board health.Stats
	// CorruptedChunks counts chunks hit by injected corruption orders.
	CorruptedChunks int
	// EmergencyDemotions counts chunks the scrub repair path demoted.
	EmergencyDemotions int
	// PromotionsVetoed counts promotion regions dropped because they
	// overlapped quarantined or distrusted granules.
	PromotionsVetoed int
	// RetiredRanges counts successful page retirements.
	RetiredRanges int
	// DegradedRanges counts latency-degradation orders applied.
	DegradedRanges int
}

// HealthStats returns the current tier-health snapshot.
func (r *Runtime) HealthStats() HealthStats {
	hs := HealthStats{
		Quarantined:        r.sys.Quarantined(),
		QuarantinedRanges:  len(r.sys.QuarantinedRanges()),
		CorruptedChunks:    r.heal.corruptedChunks,
		EmergencyDemotions: r.heal.emergencyDemotions,
		PromotionsVetoed:   r.heal.promotionsVetoed,
		RetiredRanges:      r.heal.retiredRanges,
		DegradedRanges:     r.heal.degradeOrders,
	}
	if r.scrub != nil {
		hs.Scrub = r.scrub.Stats()
	}
	if r.board != nil {
		hs.Board = r.board.Stats()
	}
	return hs
}

// Scoreboard exposes the health scoreboard (nil unless Options.Health
// is enabled), for tests and the harness.
func (r *Runtime) Scoreboard() *health.Scoreboard { return r.board }

// healthPolicy returns the effective health policy.
func (r *Runtime) healthPolicy() health.Policy {
	if r.board != nil {
		return r.board.Policy()
	}
	return health.Policy{}.WithDefaults()
}

// healthFingerprint serializes the health state and policy a compiled
// plan's placement decisions depend on. The memsim health generation
// advances on every retirement or degradation, so a plan recorded on
// healthy memory goes stale the moment pages are quarantined — the
// cached schedule could otherwise replay a promotion onto retired
// pages.
func (r *Runtime) healthFingerprint() string {
	if r.board == nil && r.sys.HealthGen() == 0 {
		return "off"
	}
	pol := "off"
	if r.board != nil {
		pol = r.board.Policy().Fingerprint()
	}
	return fmt.Sprintf("gen=%d quar=%d scrub=%t policy=%s",
		r.sys.HealthGen(), r.sys.Quarantined(), r.scrub != nil, pol)
}

// beginEpochHealth runs the epoch-start health pass: advance the fault
// schedule's epoch clock and apply any corruption/degradation orders it
// fires, then scrub the fast-tier residency. Called before the epoch's
// body, so repairs land before kernels consume the data.
func (r *Runtime) beginEpochHealth(tid int) error {
	if r.board != nil {
		r.board.BeginEpoch()
	}
	if r.faults != nil {
		for _, ord := range r.faults.AdvanceEpoch() {
			r.applyFaultOrder(tid, ord)
		}
	}
	if r.scrub != nil {
		if err := r.scrubPass(tid); err != nil {
			return err
		}
	}
	return nil
}

// endEpochHealth runs the epoch-end health pass: evacuate and retire
// granules the scoreboard condemned, then re-snapshot the fast-resident
// chunks so the next epoch's verify has a fresh reference.
func (r *Runtime) endEpochHealth(tid int) error {
	if err := r.retryPendingRetires(tid); err != nil {
		return err
	}
	if err := r.healCondemned(tid); err != nil {
		return err
	}
	r.snapshotScrub()
	return nil
}

// retryPendingRetires re-attempts retirements that failed in earlier
// epochs (typically because a fault storm made the evacuation skip):
// once the storm clears — or the occupying pages demote for any other
// reason — the condemned range must still end up in the ledger.
func (r *Runtime) retryPendingRetires(tid int) error {
	pending := r.heal.pendingRetire
	if len(pending) == 0 {
		return nil
	}
	r.heal.pendingRetire = nil
	for _, p := range pending {
		if err := r.evacuateAndRetire(tid, p.base, p.size, p.reason); err != nil {
			return err
		}
	}
	return nil
}

// applyFaultOrder executes one epoch-driven data-plane fault order.
// Orders without an address range target the lowest-addressed fully
// fast-resident chunk — the faults model fast-tier hardware, so only
// fast-resident bytes can be hit.
func (r *Runtime) applyFaultOrder(tid int, ord faultinject.Order) {
	base, size := ord.Base, ord.Size
	if size == 0 {
		var ok bool
		base, size, ok = r.firstFastChunk()
		if !ok {
			return
		}
	}
	switch ord.Kind {
	case faultinject.Corrupt:
		n := r.corruptRange(base, size, ord.Seed)
		r.heal.corruptedChunks += n
		r.rec.Instant(tid, "health", "corrupt", telemetry.Args{
			"base": base, "bytes": size, "chunks_hit": n, "epoch": ord.Epoch,
		})
	case faultinject.Degrade:
		f := ord.Factor
		if f <= 1 {
			f = 4
		}
		r.sys.DegradeRange(base, size, f)
		r.heal.degradeOrders++
		r.rec.Instant(tid, "health", "degrade", telemetry.Args{
			"base": base, "bytes": size, "factor": f, "epoch": ord.Epoch,
		})
	}
}

// firstFastChunk returns the lowest-addressed registered chunk that is
// fully fast-resident.
func (r *Runtime) firstFastChunk() (base, size uint64, ok bool) {
	for _, do := range r.reg.Objects() {
		for j := 0; j < do.NumChunks; j++ {
			lo, hi := do.ChunkRange(j)
			if hi == lo {
				continue
			}
			if r.sys.BytesOnTier(lo, hi-lo)[memsim.TierFast] == hi-lo {
				return lo, hi - lo, true
			}
		}
	}
	return 0, 0, false
}

// corruptRange flips bytes, deterministically from seed, in the
// fast-resident scrub-tracked chunks overlapping [base, base+size) —
// the bytes a failing fast-tier device would damage. It returns how
// many chunks were hit. Without a scrubber the corruption lands on the
// first fast-resident page of the overlap per object (there is nothing
// to detect it with; tests use this to prove undetected corruption is
// possible when scrubbing is off).
func (r *Runtime) corruptRange(base, size uint64, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	hit := 0
	flip := func(seg []byte) {
		if len(seg) == 0 {
			return
		}
		for k, n := 0, 1+rng.Intn(4); k < n; k++ {
			seg[rng.Intn(len(seg))] ^= byte(1 + rng.Intn(255))
		}
	}
	if r.scrub != nil {
		for _, tr := range r.scrub.Tracked() {
			if tr.Base >= base+size || base >= tr.Base+tr.Size {
				continue
			}
			if o := r.objectContaining(tr.Base); o != nil && o.data != nil {
				flip(o.data[tr.Base-o.base : tr.Base-o.base+tr.Size])
				hit++
			}
		}
		return hit
	}
	for _, o := range r.Objects() {
		if o.data == nil {
			continue
		}
		lo, hi := max64(base, o.base), min64(base+size, o.base+o.size)
		for pa := lo &^ (memsim.SmallPage - 1); pa < hi; pa += memsim.SmallPage {
			if r.sys.BytesOnTier(pa, memsim.SmallPage)[memsim.TierFast] != memsim.SmallPage {
				continue
			}
			slo, shi := max64(pa, lo), min64(pa+memsim.SmallPage, hi)
			flip(o.data[slo-o.base : shi-o.base])
			hit++
			break // one page per object is damage enough
		}
	}
	return hit
}

// objectContaining returns the live object whose range covers addr.
func (r *Runtime) objectContaining(addr uint64) *Object {
	if do, _, ok := r.reg.Find(addr); ok {
		return r.objects[do.Base]
	}
	return nil
}

// scrubPass verifies every tracked chunk's CRC against its fast-tier
// bytes. Detections are repaired in place from the scrubber's backup,
// fed to the scoreboard as hard failures, and healed: the chunk is
// demoted through the transactional engine and its pages retired. The
// modelled scrub read time is charged to the simulated clock.
func (r *Runtime) scrubPass(tid int) error {
	before := r.scrub.Stats()
	for _, tr := range r.scrub.Tracked() {
		o := r.objectContaining(tr.Base)
		if o == nil || o.data == nil {
			r.scrub.Forget(tr.Base)
			continue
		}
		data := o.data[tr.Base-o.base : tr.Base-o.base+tr.Size]
		if r.scrub.Verify(tr.Base, data) {
			continue
		}
		// Detection: the backup restore already repaired the bytes;
		// now get the data off the bad pages and retire them.
		r.rec.Instant(tid, "health", "scrub-detect", telemetry.Args{
			"object": o.name, "base": tr.Base, "bytes": tr.Size,
		})
		if r.board != nil {
			r.board.ObserveFailure(tr.Base, tr.Size, "crc")
		}
		if err := r.evacuateAndRetire(tid, tr.Base, tr.Size, "scrub"); err != nil {
			return err
		}
		r.heal.emergencyDemotions++
		r.scrub.Forget(tr.Base)
	}
	after := r.scrub.Stats()
	if gbs := r.healthPolicy().ScrubGBs; gbs > 0 {
		scanned := after.BytesScrubbed - before.BytesScrubbed
		chargedNS := uint64(float64(scanned) / (gbs * 1e9) * 1e9)
		r.simNS.Add(chargedNS)
		// The epoch scorecard's ScrubSeconds diffs this cumulative
		// charge across the epoch (see finishEpochScorecard).
		r.scrubChargedNS += chargedNS
	}
	return nil
}

// evacuateAndRetire demotes the page-aligned range off the fast tier
// through the migration engine (the engine's retry policy applies),
// then retires the pages into the quarantine ledger. A demotion that
// cannot complete leaves the pages unretired (quarantining mapped fast
// pages would corrupt the capacity ledger); only a failed rollback is
// an error.
func (r *Runtime) evacuateAndRetire(tid int, base, size uint64, reason string) error {
	alo := base &^ (memsim.SmallPage - 1)
	ahi := memsim.RoundUp(base+size, memsim.SmallPage)
	if r.sys.IsQuarantined(alo, ahi-alo) &&
		r.sys.BytesOnTier(alo, ahi-alo)[memsim.TierFast] == 0 {
		return nil
	}
	sched := migrate.Schedule{Demotions: []migrate.Region{{Base: alo, Size: ahi - alo}}}
	optStart := r.simNS.Load()
	var sink migrate.EventSink
	if r.rec.Enabled() {
		sink = func(ev migrate.Event) { r.emitMigrationEvent(tid, optStart, ev) }
	}
	// Healing is not tied to a caller's epoch context: a cancelled epoch
	// must still leave damaged chunks evacuated.
	res, err := migrate.RunSchedule(context.Background(), r.engine, r.sys, sched, sink)
	r.simNS.Add(uint64(res.Merged.Seconds * 1e9))
	if err != nil {
		return fmt.Errorf("atmem: emergency demotion [%#x,+%#x): %w", alo, ahi-alo, err)
	}
	r.invalidateMoved(res.Merged.Moved)
	if r.resid != nil {
		for _, rg := range res.Demotions.Moved {
			r.markMovedRegion(rg, false)
		}
	}
	if err := r.sys.RetirePages(alo, ahi-alo); err != nil {
		// The demotion was skipped (e.g. a fault storm): the pages are
		// still mapped fast, so they cannot be retired yet. Surface the
		// condition and queue a retry for a later epoch's heal pass.
		r.rec.Instant(tid, "health", "retire-failed", telemetry.Args{
			"base": alo, "bytes": ahi - alo, "reason": reason, "error": err.Error(),
		})
		for _, p := range r.heal.pendingRetire {
			if p.base == alo && p.size == ahi-alo {
				return nil
			}
		}
		r.heal.pendingRetire = append(r.heal.pendingRetire, pendingRetire{base: alo, size: ahi - alo, reason: reason})
		return nil
	}
	r.heal.retiredRanges++
	r.rec.Instant(tid, "health", "retire", telemetry.Args{
		"base": alo, "bytes": ahi - alo, "reason": reason,
		"quarantined_total": r.sys.Quarantined(),
	})
	return nil
}

// healCondemned evacuates and retires every granule the scoreboard
// condemned since the last drain. The retire range is clipped to this
// runtime's own registered objects: health granules are address-space
// aligned, so on a broker-shared system a condemned granule can spill
// into a neighbouring tenant's allocations — retiring those would
// charge the quarantine debit to the wrong fault domain.
func (r *Runtime) healCondemned(tid int) error {
	if r.board == nil {
		return nil
	}
	for _, rg := range r.board.DrainCondemned() {
		for _, iv := range r.ownedOverlaps(rg.Base, rg.Size) {
			if err := r.evacuateAndRetire(tid, iv.base, iv.size, "condemned"); err != nil {
				return err
			}
		}
	}
	return nil
}

type addrInterval struct{ base, size uint64 }

// ownedOverlaps intersects [base, base+size) with the runtime's live
// registered objects, in address order. Object bases and sizes are
// page-granular, so the intersections stay retirable as-is.
func (r *Runtime) ownedOverlaps(base, size uint64) []addrInterval {
	var out []addrInterval
	end := base + size
	for _, o := range r.Objects() {
		lo, hi := o.base, o.base+o.size
		if lo < base {
			lo = base
		}
		if hi > end {
			hi = end
		}
		if lo < hi {
			out = append(out, addrInterval{base: lo, size: hi - lo})
		}
	}
	return out
}

// snapshotScrub re-records CRC references and backups for every fully
// fast-resident chunk and forgets chunks that left the fast tier. Runs
// after the epoch's migration, when residency is settled and no kernel
// is mutating data — so verify-time mismatches can only be corruption.
func (r *Runtime) snapshotScrub() {
	if r.scrub == nil {
		return
	}
	live := make(map[uint64]bool)
	for _, o := range r.Objects() {
		if o.data == nil {
			continue
		}
		do := o.do
		for j := 0; j < do.NumChunks; j++ {
			lo, hi := do.ChunkRange(j)
			if hi == lo {
				continue
			}
			if r.sys.BytesOnTier(lo, hi-lo)[memsim.TierFast] != hi-lo {
				continue
			}
			live[lo] = true
			r.scrub.Snapshot(lo, o.data[lo-o.base:hi-o.base])
		}
	}
	for _, tr := range r.scrub.Tracked() {
		if !live[tr.Base] {
			r.scrub.Forget(tr.Base)
		}
	}
}

// trustedForPromotion reports whether a promotion target range is
// healthy: not overlapping the quarantine ledger and trusted by the
// scoreboard.
func (r *Runtime) trustedForPromotion(base, size uint64) bool {
	if r.sys.IsQuarantined(base, size) {
		return false
	}
	if r.board != nil && !r.board.Trusted(base, size) {
		return false
	}
	return true
}

// filterPromotions drops promotion regions that target quarantined or
// distrusted granules, counting and tracing each veto. The dropped
// ranges stay on the slow tier; the scoreboard's backoff decides when
// they may be retried.
func (r *Runtime) filterPromotions(tid int, promos []migrate.Region) []migrate.Region {
	out := promos[:0]
	for _, rg := range promos {
		if r.trustedForPromotion(rg.Base, rg.Size) {
			out = append(out, rg)
			continue
		}
		r.heal.promotionsVetoed++
		r.heal.vetoedBytes += rg.Size
		r.rec.Instant(tid, "health", "promotion-vetoed", telemetry.Args{
			"base": rg.Base, "bytes": rg.Size,
		})
	}
	return out
}

// observeMigrationHealth feeds one epoch's promotion outcomes to the
// scoreboard: a committed promotion is a successful use of the target
// granules, a skipped one a failure. Demotion failures are not scored —
// they indict the slow tier's staging, not the fast granules health
// tracks.
func (r *Runtime) observeMigrationHealth(res migrate.ScheduleResult) {
	if r.board == nil {
		return
	}
	for _, out := range res.Promotions.Outcomes {
		if out.Outcome == migrate.OutcomeSkipped {
			r.board.ObserveFailure(out.Region.Base, out.Region.Size, "migration")
		} else {
			r.board.ObserveSuccess(out.Region.Base, out.Region.Size)
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
