package atmem

// This file is the multi-tenant attachment surface: the public aliases
// for internal/broker, the broker constructor over a shared simulated
// HMS, and the runtime-side hooks — per-epoch budget enforcement lives
// in governor.go, the scorecard→arbiter signal below, and the
// cross-tenant placement lock that serializes migrations and health
// passes against every co-tenant.

import (
	"atmem/internal/broker"
	"atmem/internal/memsim"
)

// Broker arbitrates one shared fast tier between tenant runtimes; see
// internal/broker for the admission, arbiter, and shed-ladder
// semantics.
type Broker = broker.Broker

// BrokerConfig holds the broker's tunables (watermarks, grant quantum,
// breaker).
type BrokerConfig = broker.Config

// TenantSpec declares one tenant's QoS class, guaranteed floor, burst
// limit, shed priority, and per-epoch latency SLO.
type TenantSpec = broker.TenantSpec

// Tenant is an admitted tenant's handle; pass it to WithTenant to
// attach a runtime.
type Tenant = broker.Tenant

// QoSClass is a tenant's service class.
type QoSClass = broker.QoSClass

// The three QoS classes: guaranteed tenants keep their floor pinned
// and are never shed; burstable tenants float between floor and burst
// under arbiter control; best-effort tenants have no floor and are
// shed first under aggregate pressure.
const (
	ClassGuaranteed = broker.ClassGuaranteed
	ClassBurstable  = broker.ClassBurstable
	ClassBestEffort = broker.ClassBestEffort
)

// ErrAdmission is the sentinel every admission rejection wraps; test
// with errors.Is.
var ErrAdmission = broker.ErrAdmission

// NewBroker builds a broker over a fresh shared memory system for the
// given testbed. Attach runtimes with:
//
//	bk := atmem.NewBroker(atmem.NVMDRAM(), atmem.BrokerConfig{})
//	tn, err := bk.Admit(atmem.TenantSpec{Name: "svc-a", Class: atmem.ClassGuaranteed, FloorBytes: 24 << 20})
//	rt, err := atmem.New(atmem.NVMDRAM(), atmem.WithTenant(tn), ...)
//
// Every tenant runtime allocates from the same simulated system; the
// broker's arbiter rebalances their fast-tier shares once per epoch
// round (call Broker.Rebalance between rounds).
func NewBroker(tb Testbed, cfg BrokerConfig) *Broker {
	return broker.New(memsim.NewSystem(tb.params), cfg)
}

// BrokerTenant returns the tenant this runtime is attached to (nil on
// a solo runtime).
func (r *Runtime) BrokerTenant() *Tenant { return r.tenant }

// lockPlacement serializes this runtime's migrations and health passes
// against every co-tenant's: the migration engines' staging
// reservations and the post-migration invariant checker assume no
// foreign migration is in flight. No-op on a solo runtime.
func (r *Runtime) lockPlacement() {
	if r.tenant != nil {
		r.tenant.Broker().LockPlacement()
	}
}

func (r *Runtime) unlockPlacement() {
	if r.tenant != nil {
		r.tenant.Broker().UnlockPlacement()
	}
}

// reportTenantSignal publishes the epoch's scorecard-derived signal to
// the broker's arbiter: the fast-access share and latency for SLO
// tracking, and the plan's marginal/coldest densities — the grant and
// reclaim signals the arbiter rebalances on.
func (r *Runtime) reportTenantSignal(sc *Scorecard) {
	if r.tenant == nil {
		return
	}
	sig := broker.Signal{
		Epoch:           sc.Epoch,
		FastAccessShare: sc.FastAccessShare,
		ResidentBytes:   sc.ResidentBytes,
		EpochSeconds:    sc.PhaseSeconds + sc.MigrationSeconds + sc.ScrubSeconds,
	}
	if p := r.plan; p != nil {
		sig.MarginalDensity = p.MarginalDensity
		sig.ColdestDensity = p.ColdestKeptDensity
		sig.ClippedBytes = p.ClippedBytes
	}
	r.tenant.Report(sig)
}
